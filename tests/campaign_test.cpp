// Tests for the campaign subsystem: the JSON utility, declarative
// scenario specs (serialization, fingerprints, spec->engine translation),
// campaign grid expansion (count, seed stability under grid growth),
// thread-count invariance of the produced rows, the JSONL result store
// (write -> read -> resume skips everything), and the store diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/campaign.hpp"
#include "core/scenario_spec.hpp"
#include "util/json.hpp"

namespace dring::core {
namespace {

// --- util::Json ----------------------------------------------------------------

TEST(Json, ParsesScalarsAndStructure) {
  const util::Json j = util::Json::parse(
      R"({"a": 1, "b": -2.5, "c": "x\n\"y", "d": [true, false, null], )"
      R"("big": 9007199254740993})");
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_DOUBLE_EQ(j.at("b").as_double(), -2.5);
  EXPECT_EQ(j.at("c").as_string(), "x\n\"y");
  ASSERT_EQ(j.at("d").as_array().size(), 3u);
  EXPECT_TRUE(j.at("d").as_array()[0].as_bool());
  EXPECT_TRUE(j.at("d").as_array()[2].is_null());
  // Integers beyond 2^53 survive exactly (doubles would round).
  EXPECT_EQ(j.at("big").as_int(), 9007199254740993LL);
}

TEST(Json, DumpIsCanonicalAndRoundTrips) {
  const std::string text =
      R"({"z": 1, "a": {"k": [1, 2, {"q": "v"}]}, "m": "s"})";
  const util::Json j = util::Json::parse(text);
  const std::string dump = j.dump();
  // Keys sorted, no whitespace.
  EXPECT_EQ(dump, R"({"a":{"k":[1,2,{"q":"v"}]},"m":"s","z":1})");
  EXPECT_EQ(util::Json::parse(dump).dump(), dump);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(util::Json::parse(""), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("12 34"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("tru"), std::invalid_argument);
}

// --- ScenarioSpec --------------------------------------------------------------

ScenarioSpec sample_spec() {
  ScenarioSpec spec;
  spec.algorithm = "KnownNNoChirality";
  spec.n = 10;
  spec.num_agents = 4;
  spec.adversary.family = "targeted-random";
  spec.adversary.target_prob = 0.7;
  spec.adversary.activation_prob = 1.0;
  spec.adversary.t_interval = 3;
  spec.seed = 0xdeadbeefcafef00dULL;
  spec.max_rounds = 5000;
  return spec;
}

TEST(ScenarioSpec, JsonRoundTripPreservesIdentity) {
  const ScenarioSpec spec = sample_spec();
  const ScenarioSpec back =
      scenario_spec_from_json(util::Json::parse(to_json(spec).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(spec).dump());
  EXPECT_EQ(fingerprint(back), fingerprint(spec));
  EXPECT_EQ(back.seed, spec.seed);  // 64-bit seeds survive via hex strings
}

TEST(ScenarioSpec, FingerprintSeparatesEveryAxis) {
  const ScenarioSpec base = sample_spec();
  const std::uint64_t fp = fingerprint(base);

  ScenarioSpec other = base;
  other.n = 11;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.num_agents = 5;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.adversary.t_interval = 1;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.seed ^= 1;
  EXPECT_NE(fingerprint(other), fp);
  other = base;
  other.algorithm = "UnconsciousExploration";
  EXPECT_NE(fingerprint(other), fp);
}

TEST(ScenarioSpec, BuildConfigDerivesManyAgentPlacements) {
  const ScenarioSpec spec = sample_spec();
  const ExplorationConfig cfg = build_config(spec);
  EXPECT_EQ(cfg.num_agents, 4);
  ASSERT_EQ(cfg.start_nodes.size(), 4u);
  EXPECT_EQ(cfg.start_nodes, (std::vector<NodeId>{0, 2, 5, 7}));
  ASSERT_EQ(cfg.orientations.size(), 4u);
  EXPECT_EQ(cfg.stop.max_rounds, 5000);

  ScenarioSpec bad = spec;
  bad.algorithm = "NoSuchAlgorithm";
  EXPECT_THROW(build_config(bad), std::invalid_argument);
  bad = spec;
  bad.model = "HYPERSYNC";
  EXPECT_THROW(build_config(bad), std::invalid_argument);
  bad = spec;
  bad.adversary.family = "no-such-family";
  EXPECT_THROW(make_adversary_factory(bad.adversary, 1)(),
               std::invalid_argument);
}

// --- expansion -----------------------------------------------------------------

CampaignSpec sample_campaign() {
  CampaignSpec campaign;
  campaign.name = "test";
  campaign.algorithms = {"KnownNNoChirality", "UnconsciousExploration"};
  campaign.sizes = {6, 8};
  campaign.agent_counts = {0, 4};
  AdversarySpec null_adv;
  AdversarySpec targeted;
  targeted.family = "targeted-random";
  targeted.target_prob = 0.6;
  campaign.adversaries = {null_adv, targeted};
  campaign.t_intervals = {1, 4};
  campaign.seeds_per_cell = 2;
  campaign.salt = 99;
  campaign.max_rounds = 4000;
  return campaign;
}

TEST(CampaignExpand, CartesianProductCount) {
  const std::vector<ScenarioSpec> specs = expand(sample_campaign());
  EXPECT_EQ(specs.size(), 2u * 2 * 2 * 2 * 2 * 2);  // axes x seeds
  // All fingerprints distinct.
  std::unordered_set<std::uint64_t> fps;
  for (const ScenarioSpec& spec : specs) fps.insert(fingerprint(spec));
  EXPECT_EQ(fps.size(), specs.size());
}

TEST(CampaignExpand, GrowingAnAxisKeepsExistingCellIdentities) {
  const CampaignSpec small = sample_campaign();
  CampaignSpec grown = small;
  grown.algorithms.push_back("ETUnconscious");
  grown.sizes.push_back(11);
  grown.t_intervals.push_back(8);

  std::unordered_set<std::uint64_t> small_fps;
  for (const ScenarioSpec& spec : expand(small))
    small_fps.insert(fingerprint(spec));
  std::unordered_set<std::uint64_t> grown_fps;
  for (const ScenarioSpec& spec : expand(grown))
    grown_fps.insert(fingerprint(spec));

  // Every original cell (same salt, same coordinates) is still present
  // with an identical fingerprint — the resume contract across commits.
  for (const std::uint64_t fp : small_fps)
    EXPECT_TRUE(grown_fps.count(fp)) << "cell identity changed under growth";
}

TEST(CampaignExpand, NoTAxisKeepsPerAdversaryTInterval) {
  // Regression: without a t_intervals axis, an adversary's own t_interval
  // must survive expansion (it used to be clobbered to the default 1).
  CampaignSpec campaign;
  campaign.algorithms = {"KnownNNoChirality"};
  campaign.sizes = {6};
  AdversarySpec wrapped;
  wrapped.family = "targeted-random";
  wrapped.t_interval = 4;
  campaign.adversaries = {wrapped};
  const std::vector<ScenarioSpec> specs = expand(campaign);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].adversary.t_interval, 4);

  // A non-empty axis overrides the per-adversary value.
  campaign.t_intervals = {2};
  EXPECT_EQ(expand(campaign)[0].adversary.t_interval, 2);
}

TEST(CampaignExpand, JsonRoundTrip) {
  const CampaignSpec campaign = sample_campaign();
  const CampaignSpec back =
      campaign_spec_from_json(util::Json::parse(to_json(campaign).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(campaign).dump());
  EXPECT_EQ(expand(back).size(), expand(campaign).size());
}

// --- execution -----------------------------------------------------------------

CampaignSpec tiny_campaign() {
  CampaignSpec campaign;
  campaign.name = "tiny";
  campaign.algorithms = {"KnownNNoChirality", "UnconsciousExploration"};
  campaign.sizes = {5, 6};
  AdversarySpec targeted;
  targeted.family = "targeted-random";
  targeted.target_prob = 0.5;
  campaign.adversaries = {targeted};
  campaign.t_intervals = {1, 3};
  campaign.seeds_per_cell = 2;
  campaign.salt = 7;
  campaign.max_rounds = 3000;
  return campaign;
}

std::vector<std::string> row_lines(const std::vector<CampaignRow>& rows) {
  std::vector<std::string> lines;
  for (const CampaignRow& row : rows) lines.push_back(row_line(row));
  return lines;
}

TEST(CampaignRun, RowsIdenticalForAnyThreadCount) {
  const std::vector<ScenarioSpec> specs = expand(tiny_campaign());
  const auto serial = row_lines(run_scenarios(specs, 1));
  for (const int threads : {2, 4, 8})
    EXPECT_EQ(row_lines(run_scenarios(specs, threads)), serial)
        << threads << " threads";
}

TEST(CampaignRun, StoreRoundTripAndResume) {
  const std::string path =
      testing::TempDir() + "campaign_store_test.jsonl";
  std::remove(path.c_str());

  const CampaignSpec campaign = tiny_campaign();
  CampaignOptions options;
  options.threads = 2;
  options.out_path = path;

  const CampaignReport first = run_campaign(campaign, options);
  EXPECT_EQ(first.total, expand(campaign).size());
  EXPECT_EQ(first.executed, first.total);
  EXPECT_EQ(first.skipped, 0u);

  // The store parses back to exactly the executed rows.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::vector<CampaignRow> stored = read_result_store(in);
  ASSERT_EQ(stored.size(), first.rows.size());
  for (std::size_t i = 0; i < stored.size(); ++i)
    EXPECT_EQ(row_line(stored[i]), row_line(first.rows[i]));

  // Resume: nothing to do, file untouched.
  std::ifstream before(path);
  std::stringstream before_bytes;
  before_bytes << before.rdbuf();

  options.resume = true;
  const CampaignReport second = run_campaign(campaign, options);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.skipped, first.total);

  std::ifstream after(path);
  std::stringstream after_bytes;
  after_bytes << after.rdbuf();
  EXPECT_EQ(after_bytes.str(), before_bytes.str());

  // Growing the grid and resuming executes only the new cells.
  CampaignSpec grown = campaign;
  grown.sizes.push_back(7);
  const CampaignReport third = run_campaign(grown, options);
  EXPECT_EQ(third.skipped, first.total);
  EXPECT_EQ(third.executed, expand(grown).size() - first.total);

  std::remove(path.c_str());
}

TEST(CampaignRun, MalformedStoreLineReportsLineNumber) {
  std::stringstream store("{\"fp\":\"0x1\",\"result\":{},\"spec\":"
                          "{\"algorithm\":\"KnownNNoChirality\",\"n\":6}}\n"
                          "this is not json\n");
  try {
    read_result_store(store);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(CampaignDiff, DetectsAddedRemovedAndChangedRows) {
  const std::vector<ScenarioSpec> specs = expand(tiny_campaign());
  std::vector<CampaignRow> a = run_scenarios(
      std::vector<ScenarioSpec>(specs.begin(), specs.begin() + 4), 2);
  std::vector<CampaignRow> b = run_scenarios(
      std::vector<ScenarioSpec>(specs.begin() + 1, specs.begin() + 5), 2);
  b[0].outcome.rounds += 1;  // simulate a cross-commit behaviour change

  const StoreDiff diff = diff_result_stores(a, b);
  EXPECT_EQ(diff.only_a.size(), 1u);
  EXPECT_EQ(diff.only_b.size(), 1u);
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_EQ(diff.changed[0].first.fingerprint, b[0].fingerprint);
  EXPECT_FALSE(diff.identical());

  EXPECT_TRUE(diff_result_stores(a, a).identical());
}

}  // namespace
}  // namespace dring::core
