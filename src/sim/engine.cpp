#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>

namespace dring::sim {

// ---------------------------------------------------------------------------
// WorldView
// ---------------------------------------------------------------------------

Round WorldView::round() const { return engine_->round_; }
NodeId WorldView::ring_size() const { return engine_->ring_.size(); }
int WorldView::num_agents() const { return engine_->num_agents(); }
NodeId WorldView::node_of(AgentId a) const { return engine_->bodies_[a].node; }
bool WorldView::on_port(AgentId a) const { return engine_->bodies_[a].on_port; }
GlobalDir WorldView::port_side(AgentId a) const {
  return engine_->bodies_[a].port_side;
}
bool WorldView::terminated(AgentId a) const {
  return engine_->bodies_[a].terminated;
}
bool WorldView::active_last_round(AgentId a) const {
  return engine_->bodies_[a].last_active_round == engine_->round_ - 1;
}
Round WorldView::idle_rounds(AgentId a) const {
  return engine_->round_ - 1 - engine_->bodies_[a].last_active_round;
}
const std::vector<bool>& WorldView::visited() const {
  return engine_->visited_;
}

agent::Intent WorldView::probe_intent(AgentId a) const {
  return engine_->probe_intent(a);
}

std::optional<GlobalDir> WorldView::probe_move(AgentId a) const {
  const agent::Intent intent = probe_intent(a);
  if (intent.kind != agent::Intent::Kind::Move) return std::nullopt;
  return engine_->bodies_[a].orientation.to_global(intent.dir);
}

EdgeId WorldView::edge_towards(AgentId a, GlobalDir d) const {
  return engine_->ring_.edge_from(engine_->bodies_[a].node, d);
}

// ---------------------------------------------------------------------------
// Adversary defaults
// ---------------------------------------------------------------------------

std::vector<bool> Adversary::select_active(const WorldView& view) {
  return std::vector<bool>(static_cast<std::size_t>(view.num_agents()), true);
}

std::optional<EdgeId> Adversary::choose_missing_edge(
    const WorldView& /*view*/, const std::vector<IntentRecord>& /*intents*/) {
  return std::nullopt;
}

void Adversary::order_port_contenders(const WorldView& /*view*/,
                                      PortRef /*port*/,
                                      std::vector<AgentId>& /*contenders*/) {}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(NodeId n, std::optional<NodeId> landmark, Model model,
               EngineOptions options)
    : ring_(n, landmark),
      model_(model),
      options_(options),
      adversary_(&null_adversary_),
      visited_(static_cast<std::size_t>(n), false),
      occupancy_(static_cast<std::size_t>(n)) {}

AgentId Engine::add_agent(NodeId start, agent::Orientation orientation,
                          std::unique_ptr<agent::Brain> brain) {
  assert(start >= 0 && start < ring_.size());
  const AgentId id = static_cast<AgentId>(bodies_.size());
  AgentBody body;
  body.id = id;
  body.node = start;
  body.orientation = orientation;
  bodies_.push_back(body);
  brains_.push_back(std::move(brain));
  occupancy_[static_cast<std::size_t>(start)].in_node += 1;
  probe_cache_.emplace_back();
  ++live_agents_;
  mark_visited(start);
  bump_version();
  return id;
}

void Engine::set_adversary(Adversary* adversary) {
  adversary_ = adversary != nullptr ? adversary : &null_adversary_;
}

void Engine::mark_visited(NodeId v) {
  if (!visited_[static_cast<std::size_t>(v)]) {
    visited_[static_cast<std::size_t>(v)] = true;
    ++visited_count_;
    if (visited_count_ == ring_.size() && explored_round_ < 0)
      explored_round_ = round_;
  }
}

agent::Snapshot Engine::make_snapshot(AgentId a) const {
  ++perf_counters_.snapshots;
  const AgentBody& self = bodies_[a];
  const NodeOccupancy& occ = occupancy_[static_cast<std::size_t>(self.node)];
  agent::Snapshot snap;
  snap.is_landmark = ring_.is_landmark(self.node);
  snap.on_port = self.on_port;
  std::int32_t ccw = occ.ccw_port;
  std::int32_t cw = occ.cw_port;
  if (self.on_port) {
    snap.port_dir = self.orientation.to_local(self.port_side);
    (self.port_side == GlobalDir::Ccw ? ccw : cw) -= 1;
    snap.others_in_node = occ.in_node;
  } else {
    snap.others_in_node = occ.in_node - 1;
  }
  if (self.orientation.to_local(GlobalDir::Ccw) == Dir::Left) {
    snap.others_on_left_port = static_cast<int>(ccw);
    snap.others_on_right_port = static_cast<int>(cw);
  } else {
    snap.others_on_left_port = static_cast<int>(cw);
    snap.others_on_right_port = static_cast<int>(ccw);
  }
  return snap;
}

void Engine::try_acquire(const PortRef& port, AgentId a) {
  AgentBody& b = bodies_[a];
  if (!b.outcome.port_acquired && ring_.acquire_port(port, a)) {
    b.on_port = true;
    b.port_side = port.side;
    b.outcome.port_acquired = true;
    occ_enter_port(b.node, port.side);
  }
}

agent::Intent Engine::probe_intent(AgentId a) const {
  const AgentBody& body = bodies_[a];
  if (body.terminated) return agent::Intent::stay();
  ++perf_counters_.probe_calls;
  ProbeEntry& entry = probe_cache_[static_cast<std::size_t>(a)];
  if (entry.version == state_version_) {
    ++perf_counters_.probe_hits;
  } else {
    auto clone = brains_[a]->clone();
    entry.intent = clone->on_activate(make_snapshot(a), body.outcome);
    entry.version = state_version_;
  }
  return entry.intent;
}

void Engine::decide_activation() {
  std::vector<char>& active = scratch_->active;
  if (model_ == Model::FSYNC) {
    // FSYNC: everyone live is active; no adversary choice, no WorldView.
    for (const AgentBody& b : bodies_)
      active[static_cast<std::size_t>(b.id)] = b.terminated ? 0 : 1;
    return;
  }

  const WorldView view(*this);
  const std::vector<bool> selected = adversary_->select_active(view);
  const std::size_t k = bodies_.size();
  for (std::size_t i = 0; i < k; ++i)
    active[i] = i < selected.size() && selected[i] ? 1 : 0;

  // Terminated agents never activate.
  for (const AgentBody& b : bodies_)
    if (b.terminated) active[static_cast<std::size_t>(b.id)] = 0;

  // A round activates a non-empty subset of the (live) agents.
  const bool none = std::none_of(active.begin(), active.begin() + k,
                                 [](char x) { return x; });
  if (none) {
    bool any_live = false;
    for (const AgentBody& b : bodies_) {
      if (!b.terminated) {
        active[static_cast<std::size_t>(b.id)] = 1;
        any_live = true;
      }
    }
    if (!any_live) return;  // everyone terminated
    ++fairness_interventions_;
  }

  // Activation fairness: no live agent sleeps longer than the window.
  for (AgentBody& b : bodies_) {
    if (b.terminated || active[static_cast<std::size_t>(b.id)]) continue;
    const Round idle = round_ - 1 - b.last_active_round;
    if (idle >= options_.fairness_window) {
      active[static_cast<std::size_t>(b.id)] = 1;
      ++fairness_interventions_;
    }
  }
}

bool Engine::step() {
  if (live_agents_ == 0) return false;

  scratch_->ensure(bodies_.size());
  StepScratch& s = *scratch_;

  ++round_;
  ring_.restore_edges();
  const WorldView view(*this);

  // --- Phase 1: activation -------------------------------------------------
  decide_activation();

  // ET simultaneity enforcement: force-activate agents whose budget of
  // "edge present while I slept" rounds is exhausted, and remember their
  // edges so the adversary's removal can be vetoed below.
  s.et_protected.clear();
  if (model_ == Model::SSYNC_ET) {
    for (AgentBody& b : bodies_) {
      if (b.terminated || !b.on_port) continue;
      if (b.et_missed_present >= options_.et_budget) {
        if (!s.active[static_cast<std::size_t>(b.id)]) {
          s.active[static_cast<std::size_t>(b.id)] = 1;
          ++fairness_interventions_;
        }
        s.et_protected.push_back(ring_.edge_from(b.node, b.port_side));
        b.et_missed_present = 0;
      }
    }
  }

  // --- Phase 2: Look & Compute ---------------------------------------------
  // The agent-id -> intent slot map only feeds the trace recorder.
  const bool track_slots = options_.record_trace;
  s.computed.clear();
  for (AgentBody& b : bodies_) {
    if (track_slots) s.intent_slot[static_cast<std::size_t>(b.id)] = -1;
    if (!s.active[static_cast<std::size_t>(b.id)]) continue;
    const agent::Snapshot snap = make_snapshot(b.id);
    const agent::Feedback fb = b.outcome;
    b.outcome = {};
    const agent::Intent intent = brains_[b.id]->on_activate(snap, fb);
    if (track_slots)
      s.intent_slot[static_cast<std::size_t>(b.id)] =
          static_cast<std::int32_t>(s.computed.size());
    s.computed.push_back({b.id, intent});
    b.last_active_round = round_;
  }
  bump_version();  // brains and outcomes changed

  // --- Phase 3: terminations, releases, then port acquisition ---------------
  // 3a. terminations and explicit port releases.
  for (const StepScratch::Computed& cmp : s.computed) {
    AgentBody& b = bodies_[cmp.agent];
    switch (cmp.intent.kind) {
      case agent::Intent::Kind::Terminate:
        b.terminated = true;
        b.termination_round = round_;
        --live_agents_;
        // Correctness oracle: the terminal state may be entered only after
        // the exploration of the ring (paper, Section 2.1).
        if (!explored()) premature_termination_ = true;
        break;
      case agent::Intent::Kind::StepOff:
        if (b.on_port) {
          ring_.release_port({b.node, b.port_side}, b.id);
          b.on_port = false;
          occ_leave_port(b.node, b.port_side);
        }
        break;
      case agent::Intent::Kind::Move: {
        const GlobalDir gd = b.orientation.to_global(cmp.intent.dir);
        if (b.on_port && b.port_side != gd) {
          // Direction change: leave the old port before contending.
          ring_.release_port({b.node, b.port_side}, b.id);
          b.on_port = false;
          occ_leave_port(b.node, b.port_side);
        }
        break;
      }
      case agent::Intent::Kind::Stay:
        break;  // stays wherever it is (possibly asleep on a port)
    }
  }
  bump_version();  // terminations and port releases changed the view

  // 3b. group movers by target port and resolve mutual exclusion. The
  // ((port, arrival) key, agent) pairs sort into exactly the (node, side)-
  // ordered, arrival-stable buckets the old std::map grouping produced —
  // without any per-round node allocation.
  s.contenders.clear();
  for (const StepScratch::Computed& cmp : s.computed) {
    AgentBody& b = bodies_[cmp.agent];
    if (b.terminated || cmp.intent.kind != agent::Intent::Kind::Move) continue;
    const GlobalDir gd = b.orientation.to_global(cmp.intent.dir);
    b.outcome.attempted_move = true;
    b.outcome.attempted_dir = cmp.intent.dir;
    if (b.on_port && b.port_side == gd) {
      b.outcome.port_acquired = true;  // keeps the port it already holds
      continue;
    }
    const std::uint64_t port_key =
        (static_cast<std::uint64_t>(b.node) << 1) |
        (gd == GlobalDir::Ccw ? 0u : 1u);
    // 24-bit arrival budget: > 2^24 movers in one round would bleed into
    // the port bits and corrupt bucketing.
    assert(s.contenders.size() < (1u << 24));
    s.contenders.emplace_back((port_key << 24) | s.contenders.size(),
                              cmp.agent);
  }
  if (adversary_->reorders_contenders()) {
    std::sort(s.contenders.begin(), s.contenders.end());
    for (std::size_t i = 0; i < s.contenders.size();) {
      const std::uint64_t port_key = s.contenders[i].first >> 24;
      const PortRef port{static_cast<NodeId>(port_key >> 1),
                         (port_key & 1) == 0 ? GlobalDir::Ccw : GlobalDir::Cw};
      s.bucket.clear();
      for (;
           i < s.contenders.size() && (s.contenders[i].first >> 24) == port_key;
           ++i)
        s.bucket.push_back(s.contenders[i].second);
      bump_version();  // outcomes / previous bucket's acquisitions
      adversary_->order_port_contenders(view, port, s.bucket);
      for (AgentId a : s.bucket) try_acquire(port, a);
    }
  } else {
    // Default tie-break: first arrival per port wins, so mutex resolves
    // directly in arrival order — no grouping, no sort, no callbacks.
    for (const auto& [key, a] : s.contenders) {
      const std::uint64_t port_key = key >> 24;
      const PortRef port{static_cast<NodeId>(port_key >> 1),
                         (port_key & 1) == 0 ? GlobalDir::Ccw : GlobalDir::Cw};
      try_acquire(port, a);
    }
  }
  bump_version();  // acquisition outcomes are now observable

  // --- Phase 4: adversarial edge removal ------------------------------------
  s.records.clear();
  if (adversary_->observes_intents()) {
    for (const StepScratch::Computed& cmp : s.computed) {
      const AgentBody& b = bodies_[cmp.agent];
      IntentRecord rec;
      rec.agent = cmp.agent;
      rec.intent = cmp.intent;
      if (cmp.intent.kind == agent::Intent::Kind::Move) {
        const GlobalDir gd = b.orientation.to_global(cmp.intent.dir);
        rec.move = gd;
        rec.target_edge = ring_.edge_from(b.node, gd);
        rec.port_acquired = b.outcome.port_acquired;
      }
      s.records.push_back(rec);
    }
  }
  std::optional<EdgeId> missing =
      adversary_->choose_missing_edge(view, s.records);
  if (missing &&
      std::find(s.et_protected.begin(), s.et_protected.end(), *missing) !=
          s.et_protected.end()) {
    // ET veto: the forced agent must act in a round where its edge is
    // present; the adversary has exhausted its right to remove it.
    missing.reset();
    ++fairness_interventions_;
  }
  if (missing) {
    const bool ok = ring_.remove_edge(*missing);
    if (!ok)
      violations_.push_back("round " + std::to_string(round_) +
                            ": adversary attempted a second edge removal");
  }

  // --- Phase 5: movement -----------------------------------------------------
  s.moves.clear();
  for (AgentBody& b : bodies_) {
    if (!b.on_port || b.terminated) continue;
    const EdgeId e = ring_.edge_from(b.node, b.port_side);
    const bool was_active = s.active[static_cast<std::size_t>(b.id)];
    if (was_active) {
      // Only agents whose Compute ended positioned on the port traverse.
      if (b.outcome.attempted_move && b.outcome.port_acquired &&
          ring_.edge_present(e)) {
        s.moves.push_back(
            {b.id, ring_.neighbour(b.node, b.port_side), false, b.port_side});
      }
    } else {
      // Sleeping on a port.
      if (ring_.edge_present(e)) {
        if (model_ == Model::SSYNC_PT) {
          s.moves.push_back({b.id, ring_.neighbour(b.node, b.port_side), true,
                             b.port_side});
        } else if (model_ == Model::SSYNC_ET) {
          b.et_missed_present += 1;
        }
      }
    }
  }
  for (const StepScratch::PendingMove& mv : s.moves) {
    AgentBody& b = bodies_[mv.agent];
    ring_.release_port({b.node, b.port_side}, b.id);
    b.on_port = false;
    // Off the source port, into the target node proper.
    port_slot(b.node, b.port_side) -= 1;
    occupancy_[static_cast<std::size_t>(mv.to)].in_node += 1;
    b.node = mv.to;
    mark_visited(mv.to);
    if (mv.passive) {
      b.passive_moves += 1;
      b.outcome.transported = true;
      b.outcome.transport_dir = b.orientation.to_local(mv.dir);
    } else {
      b.moves += 1;
      b.outcome.moved = true;
    }
  }
  // Agents that leave a port (even passively) owe no further ET debt.
  // (The debt counter is only ever advanced under ET.)
  if (model_ == Model::SSYNC_ET) {
    for (AgentBody& b : bodies_)
      if (!b.on_port) b.et_missed_present = 0;
  }
  bump_version();  // positions and movement outcomes changed

  // --- Phase 6: verification & trace ----------------------------------------
  if (options_.verify) {
    for (const AgentBody& b : bodies_) {
      if (b.on_port) {
        const auto holder = ring_.port_holder({b.node, b.port_side});
        if (!holder || *holder != b.id) {
          violations_.push_back("round " + std::to_string(round_) +
                                ": agent " + std::to_string(b.id) +
                                " on a port it does not hold");
        }
      }
      if (b.node < 0 || b.node >= ring_.size()) {
        violations_.push_back("round " + std::to_string(round_) + ": agent " +
                              std::to_string(b.id) + " off the ring");
      }
    }
  }

  if (options_.record_trace) {
    RoundTrace rt;
    rt.round = round_;
    rt.missing = ring_.missing_edge();
    rt.agents.reserve(bodies_.size());
    for (const AgentBody& b : bodies_) {
      AgentTrace at;
      at.id = b.id;
      at.node = b.node;
      at.on_port = b.on_port;
      at.port_side = b.port_side;
      at.active = s.active[static_cast<std::size_t>(b.id)] != 0;
      at.terminated = b.terminated;
      at.state = brains_[b.id]->state_name();
      const std::int32_t slot = s.intent_slot[static_cast<std::size_t>(b.id)];
      if (slot >= 0)
        at.intent = s.computed[static_cast<std::size_t>(slot)].intent;
      rt.agents.push_back(std::move(at));
    }
    trace_.push_back(std::move(rt));
  }

  return true;
}

bool Engine::advance_run(const StopPolicy& stop, std::string& reason) {
  if (round_ >= stop.max_rounds) {
    reason = "max_rounds";
    return false;
  }
  if (!step()) {
    reason = "all_terminated";
    return false;
  }
  const int term = num_agents() - live_agents_;
  if (stop.stop_when_all_terminated &&
      term == static_cast<int>(bodies_.size())) {
    reason = "all_terminated";
    return false;
  }
  if (stop.stop_when_explored && explored()) {
    reason = "explored";
    return false;
  }
  if (stop.stop_when_explored_and_one_terminated && explored() && term > 0) {
    reason = "explored_and_one_terminated";
    return false;
  }
  return true;
}

RunResult Engine::collect_result(std::string reason) const {
  RunResult result;
  result.explored = explored();
  result.explored_round = explored_round_;
  result.rounds = round_;
  result.premature_termination = premature_termination_;
  result.fairness_interventions = fairness_interventions_;
  result.violations = violations_;
  result.stop_reason = std::move(reason);
  for (const AgentBody& b : bodies_) {
    AgentResult ar;
    ar.id = b.id;
    ar.terminated = b.terminated;
    ar.termination_round = b.termination_round;
    ar.moves = b.moves;
    ar.passive_moves = b.passive_moves;
    ar.final_node = b.node;
    ar.final_state = brains_[b.id]->state_name();
    result.active_moves += b.moves;
    result.passive_moves += b.passive_moves;
    if (b.terminated) result.terminated_agents += 1;
    result.agents.push_back(std::move(ar));
  }
  result.total_moves = result.active_moves + result.passive_moves;
  result.all_terminated =
      result.terminated_agents == static_cast<int>(bodies_.size());
  return result;
}

RunResult Engine::run(const StopPolicy& stop) {
  std::string reason = "max_rounds";
  while (advance_run(stop, reason)) {
  }
  return collect_result(std::move(reason));
}

}  // namespace dring::sim
