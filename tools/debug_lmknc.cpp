// Scratch debug driver (not part of the library build): find failing
// LandmarkNoChirality scenarios from the Table 2 sweep.
#include <iostream>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"

using namespace dring;

namespace {

util::FlagTable flag_table() {
  util::FlagTable flags(
      "debug_lmknc",
      "scan the Table 2 LandmarkNoChirality sweep for failing scenarios");
  flags.synopsis("debug_lmknc")
      .flag("help", "", "print this help")
      .note("scratch tool: prints one FAIL line per scenario that did not "
            "explore/terminate cleanly (silent when all pass)");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();
  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }

  for (NodeId n : {5, 6, 8, 11, 16, 24, 32}) {
    for (int seed = 0; seed <= 4; ++seed) {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::LandmarkNoChirality, n);
      cfg.stop.max_rounds = 100000LL * n + 1000;
      std::unique_ptr<sim::Adversary> adv;
      if (seed == 0) {
        adv = std::make_unique<sim::NullAdversary>();
      } else if (seed == 1) {
        adv = std::make_unique<adversary::BlockAgentAdversary>(0);
      } else {
        adv = std::make_unique<adversary::TargetedRandomAdversary>(
            0.7, 1.0, 1000 * n + seed);
      }
      const sim::RunResult r = core::run_exploration(cfg, adv.get());
      const bool ok = r.explored && !r.premature_termination &&
                      r.all_terminated && r.violations.empty();
      if (!ok) {
        std::cout << "FAIL n=" << n << " seed=" << seed
                  << " explored=" << r.explored
                  << " premature=" << r.premature_termination
                  << " terminated=" << r.terminated_agents << "/2"
                  << " rounds=" << r.rounds << " stop=" << r.stop_reason;
        for (const auto& a : r.agents)
          std::cout << " | a" << a.id << " state=" << a.final_state
                    << " node=" << a.final_node << " term@"
                    << a.termination_round;
        std::cout << "\n";
      }
    }
  }
  return 0;
}
