// Observation and action types of the Look-Compute-Move cycle
// (paper, Section 2.1).
//
// A Snapshot is what Look returns: the agent's own position within the node
// (node proper, or on one of the two ports), the positions of co-located
// agents, and whether the node is the landmark.  Agents are anonymous, so
// other agents appear only as counts.  All directions in a Snapshot are in
// the *agent's local frame* — the engine translates through the agent's
// private orientation before calling the brain.
//
// A Feedback describes the outcome of the agent's previous activation (an
// agent only learns whether its move succeeded when it next observes the
// world; in SSYNC it may also discover it was passively transported while
// asleep — PT model).
//
// An Intent is the result of Compute: move in a local direction, stay put,
// step from a port back into the node (used by the FComm handshake of
// Algorithm LandmarkWithChirality), or enter the terminal state.
#pragma once

#include "ring/types.hpp"

namespace dring::agent {

/// Result of the Look phase, in the agent's local frame.
struct Snapshot {
  bool is_landmark = false;   ///< this node is the landmark
  bool on_port = false;       ///< self is positioned on a port
  Dir port_dir = Dir::Left;   ///< which port (valid iff on_port)
  int others_in_node = 0;     ///< other agents in the node proper
  int others_on_left_port = 0;   ///< other agent holding my-left port (0/1)
  int others_on_right_port = 0;  ///< other agent holding my-right port (0/1)

  int others_on_port(Dir d) const {
    return d == Dir::Left ? others_on_left_port : others_on_right_port;
  }
};

/// Outcome of the previous activation, reported at the next one.
struct Feedback {
  bool attempted_move = false;  ///< previous Compute returned Move
  Dir attempted_dir = Dir::Left;
  bool port_acquired = false;   ///< gained (or already held) the port
  bool moved = false;           ///< actively traversed the edge
  bool transported = false;     ///< PT moved us while sleeping on a port
  Dir transport_dir = Dir::Left;  ///< direction of the passive traversal

  /// The paper's `failed` predicate: tried to enter a port and failed
  /// (mutual exclusion loss).
  bool failed() const { return attempted_move && !port_acquired; }

  /// Blocked: held the port but the edge was missing and no passive
  /// transport occurred.
  bool blocked() const {
    return attempted_move && port_acquired && !moved && !transported;
  }
};

/// Result of the Compute phase.
struct Intent {
  enum class Kind : std::uint8_t {
    Move,      ///< position on the port in `dir` and traverse if possible
    Stay,      ///< direction = nil; remain where we are
    StepOff,   ///< leave the currently-held port, back into the node proper
    Terminate  ///< enter the terminal state (never moves again)
  };

  Kind kind = Kind::Stay;
  Dir dir = Dir::Left;

  static Intent move(Dir d) { return {Kind::Move, d}; }
  static Intent stay() { return {Kind::Stay, Dir::Left}; }
  static Intent step_off() { return {Kind::StepOff, Dir::Left}; }
  static Intent terminate() { return {Kind::Terminate, Dir::Left}; }
};

}  // namespace dring::agent
