// Paper artifacts: the declarative layer that turns campaign stores into
// the paper's tables and figures.
//
// Until PR 4 the headline results (Table 2/4 possibility, the
// price-of-liveness figure) were produced by bespoke bench binaries with
// hand-rolled scenario loops and formatting, while the campaign subsystem
// (core/campaign.hpp) and analytics (core/analysis.hpp) already provided
// exactly the needed machinery: declarative scenario specs, a canonical
// sharded JSONL store, byte-stable derivation.  PR 5 finished the
// migration: every paper table and figure — the possibility tables, the
// impossibility tables (expect-failure rows), the figure executions
// (per-round trace series), the lower-bound replays, the ablation and
// extension studies, and the ID-machinery worked examples — is a named
// artifact.  An Artifact is one unit of:
//
//   * a fixed scenario list (ScenarioSpecs with explicit seeds, matching
//     the legacy bench grids cell for cell; scenarios the declarative
//     config cannot express — hand-built engines, non-registry brains —
//     carry a run_custom escape hatch plus a `variant` label that keeps
//     the spec a faithful identity);
//   * an optional per-run enrichment hook that computes extra metrics
//     from the executed run (numeric extras like the price-of-liveness
//     offline optimum, text extras like the per-round TraceSeries of the
//     figure artifacts) and persists them in the store row;
//   * a byte-stable renderer from store rows to the committed report,
//     plus an optional status fold (the shim binaries' exit code).
//
// Execution rides run_sweep with run_campaign semantics (resume by
// fingerprint, --shard i/m partitioning, canonical store bytes), so an
// artifact's campaign can run across machines and merge losslessly; the
// derivation is a pure function of the store, so committed reports under
// examples/paper/ re-derive byte-identically in CI (dring_artifact
// --check).  The migrated bench binaries are thin shims: build the
// artifact, run it in-memory, print the derived report — their stdout is
// byte-identical to the pre-migration output (pinned by
// tests/artifact_test.cpp).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace dring::core {

/// One cell of an artifact's scenario list: the spec plus the display
/// identity its renderer needs (row label, table-section index).
struct ArtifactScenario {
  ScenarioSpec spec;
  std::string label;  ///< renderer row label (e.g. "targeted-random#3")
  int group = 0;      ///< renderer-defined section (e.g. table row index)
  /// Record the per-round trace for this scenario and hand it to the
  /// enrich hook.  Off by default so artifacts can mix a few traced
  /// scenarios into large untraced grids without holding every trace.
  bool trace = false;
  /// Escape hatch for scenarios the declarative spec cannot express
  /// (hand-built engines, non-registry brains: the ablation guess
  /// policies, random-walk baselines, many-agent teams).  When set, the
  /// worker calls this instead of translating `spec` — but `spec` remains
  /// the scenario's identity (fingerprint, store row, resume/shard), so
  /// it must describe the custom run faithfully and uniquely (use
  /// ScenarioSpec::variant for whatever the other fields cannot say).
  std::function<sim::RunResult()> run_custom;
};

/// What an enrich hook may persist in the scenario's store row.
struct ArtifactExtras {
  std::map<std::string, long long> numbers;    ///< -> outcome.extra
  std::map<std::string, std::string> text;     ///< -> outcome.extra_text
};

/// Per-round series persisted in a store row ("extra_text" member): one
/// line per round, fields joined with '|'.  The figure artifacts encode
/// whatever per-round columns their renderer needs (node, state, missing
/// edge, ...) at enrich time; the renderer decodes from the store alone —
/// fields must not contain '|' or newlines.
struct TraceSeries {
  std::vector<std::vector<std::string>> rows;

  void add(std::vector<std::string> fields) { rows.push_back(std::move(fields)); }
  std::string encode() const;
  static TraceSeries decode(const std::string& text);
};

/// A named paper artifact.
struct Artifact {
  std::string name;         ///< CLI identity (e.g. "table2_fsync")
  std::string title;        ///< one-line description for --list
  std::string report_file;  ///< file name under the artifact directory
  std::vector<ArtifactScenario> scenarios;
  /// Optional post-run enrichment: extra per-run data computed from the
  /// executed run (the trace is non-empty only for scenarios with
  /// `trace` set), persisted in the row's "extra"/"extra_text" store
  /// members.  Must be a pure function of (scenario, run) — store bytes
  /// stay deterministic.
  std::function<ArtifactExtras(const ArtifactScenario&, const SweepRun&)>
      enrich;
  /// Derive the report from rows positionally parallel to `scenarios`.
  std::function<std::string(const std::vector<ArtifactScenario>&,
                            const std::vector<const CampaignRow*>&)>
      render;
  /// Optional exit-status fold for the shim binaries (e.g. Figure 2's
  /// "every size matched 3n-6" check).  Absent = always 0.
  std::function<int(const std::vector<ArtifactScenario>&,
                    const std::vector<const CampaignRow*>&)>
      status;
};

// --- the registry -----------------------------------------------------------

/// Every paper artifact at its paper-default grid, in a stable order.
const std::vector<Artifact>& paper_artifacts();

/// Lookup by name; throws std::invalid_argument listing the valid names.
const Artifact& artifact_by_name(const std::string& name);

// --- parameterized builders (tests, bench --seeds/--max-n flags) ------------

/// Table 1 (FSYNC impossibility): replay the Obs. 1 / Obs. 2 / Th. 1-2
/// proof constructions against concrete protocols and report that each
/// defeats them (expect-failure rows; `horizon` bounds the replays).
Artifact make_table1_artifact(Round horizon);

/// Table 2 (FSYNC possibility): per theorem row, sweep `sizes` under
/// static / obs1-block / targeted-random adversaries (`seeds` randomized
/// runs per size) plus the exact Figure 2 worst case, and report the worst
/// measured termination round against the paper bound.
Artifact make_table2_artifact(std::vector<NodeId> sizes, int seeds);

/// Table 3 (SSYNC impossibility): replay the Th. 9 / Th. 10 / Th. 11 /
/// Th. 19 constructions (expect-failure rows; `horizon` bounds them).
Artifact make_table3_artifact(Round horizon);

/// Table 4 (SSYNC possibility): per theorem row, sweep `sizes` under
/// hostile randomized dynamics and — for the 2-agent PT rows — the
/// sliding-window move-forcing adversary, and report the worst measured
/// move count against the paper's asymptotic claim.
Artifact make_table4_artifact(std::vector<NodeId> sizes, int seeds);

/// Figure 2: the exact worst-case schedule on which KnownNNoChirality
/// needs 3n-6 rounds, swept over `sizes`; status is non-zero when any
/// size misses the bound.
Artifact make_fig2_worstcase_artifact(std::vector<NodeId> sizes);

/// Figures 12/15/16: the paper's execution figures reconstructed from
/// recorded traces (per-round TraceSeries persisted in the store).
Artifact make_fig_runs_artifact();

/// Figures 9/10/11: the ID-assignment worked examples and the ID = 1
/// direction schedule — pure computation, no scenarios; status is
/// non-zero when a computed ID disagrees with the paper.
Artifact make_fig9_11_artifact();

/// Lower bounds (Obs. 3, Th. 4, Th. 13/15): the proof schedules replayed
/// against the asymptotically optimal algorithms, sizes capped at
/// `max_n`.
Artifact make_lower_bounds_artifact(NodeId max_n);

/// Ablations A-D (bound looseness, guess policy, window-size parabola,
/// deterministic vs random walk); `seeds` randomized runs per cell.
Artifact make_ablations_artifact(int seeds);

/// Extension study: team size k = 1..5 for the unconscious protocols and
/// the random-walk baseline on a ring of `n` under hostile dynamics.
Artifact make_extension_many_agents_artifact(NodeId n, int seeds,
                                             Round budget);

/// Price of liveness: live exploration versus the offline optimum on the
/// same schedule (targeted-random schedules over `random_sizes`, `seeds`
/// each, plus the Figure 2 worst case over `fig2_sizes`).  The offline
/// optimum is computed at run time from the recorded trace (enrich hook)
/// and persisted, so the report derives from the store alone.
Artifact make_price_of_liveness_artifact(std::vector<NodeId> random_sizes,
                                         std::vector<NodeId> fig2_sizes,
                                         int seeds);

// --- execution --------------------------------------------------------------

/// Execution knobs (run_campaign semantics over the scenario list).
struct ArtifactRunOptions {
  int threads = 0;
  std::string store_path;  ///< empty = no store
  bool resume = false;     ///< skip fingerprints already stored
  int shard_index = 0;
  int shard_count = 1;
};

struct ArtifactRunReport {
  std::size_t total = 0;
  std::size_t sharded_out = 0;
  std::size_t skipped = 0;
  std::size_t executed = 0;
  std::vector<CampaignRow> rows;  ///< executed rows, scenario order
};

/// Run (a shard of) the artifact's scenarios and maintain its store.
ArtifactRunReport run_artifact(const Artifact& artifact,
                               const ArtifactRunOptions& options);

/// Execute every scenario in-memory (no store); rows in scenario order.
std::vector<CampaignRow> run_artifact_rows(const Artifact& artifact,
                                           int threads);

/// Derive the committed report from store rows: every scenario fingerprint
/// must be present (rows from other campaigns sharing the store are
/// ignored); throws std::runtime_error naming the artifact and the number
/// of missing rows otherwise.
std::string derive_report(const Artifact& artifact,
                          const std::vector<CampaignRow>& rows);

/// The artifact's exit status over the same rows (0 when it has no status
/// fold).  Same missing-row contract as derive_report.
int derive_status(const Artifact& artifact,
                  const std::vector<CampaignRow>& rows);

/// Report + status in one pass (the shim binaries' path; the scenario
/// fingerprints and row index are computed once for both folds).
struct ArtifactDerivation {
  std::string report;
  int status = 0;
};

ArtifactDerivation derive(const Artifact& artifact,
                          const std::vector<CampaignRow>& rows);

/// Renderer helper: the row's numeric extra under `key`, or `fallback`
/// when the enrich hook did not record it.
long long stored_extra(const CampaignRow& row, const std::string& key,
                       long long fallback);

}  // namespace dring::core
