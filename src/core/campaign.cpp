#include "core/campaign.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <stdexcept>

namespace dring::core {

CampaignOutcome outcome_of(const sim::RunResult& r) {
  CampaignOutcome o;
  o.explored = r.explored;
  o.explored_round = r.explored_round;
  o.rounds = r.rounds;
  o.total_moves = r.total_moves;
  o.terminated_agents = r.terminated_agents;
  o.all_terminated = r.all_terminated;
  o.premature_termination = r.premature_termination;
  o.fairness_interventions = r.fairness_interventions;
  o.violations = static_cast<int>(r.violations.size());
  o.stop_reason = r.stop_reason;
  return o;
}

util::Json to_json(const CampaignRow& row) {
  util::Json result;
  result.set("explored", row.outcome.explored);
  result.set("explored_round",
             static_cast<long long>(row.outcome.explored_round));
  result.set("rounds", static_cast<long long>(row.outcome.rounds));
  result.set("total_moves", row.outcome.total_moves);
  result.set("terminated_agents",
             static_cast<long long>(row.outcome.terminated_agents));
  result.set("all_terminated", row.outcome.all_terminated);
  result.set("premature", row.outcome.premature_termination);
  result.set("fairness_interventions", row.outcome.fairness_interventions);
  result.set("violations", static_cast<long long>(row.outcome.violations));
  result.set("stop_reason", row.outcome.stop_reason);

  util::Json j;
  j.set("fp", hex_u64(row.fingerprint));
  j.set("result", std::move(result));
  j.set("spec", to_json(row.spec));
  return j;
}

CampaignRow campaign_row_from_json(const util::Json& j) {
  CampaignRow row;
  row.fingerprint = std::stoull(j.at("fp").as_string(), nullptr, 0);
  row.spec = scenario_spec_from_json(j.at("spec"));
  const util::Json& r = j.at("result");
  row.outcome.explored = r.get_bool("explored", false);
  row.outcome.explored_round = r.get_int("explored_round", -1);
  row.outcome.rounds = r.get_int("rounds", 0);
  row.outcome.total_moves = r.get_int("total_moves", 0);
  row.outcome.terminated_agents =
      static_cast<int>(r.get_int("terminated_agents", 0));
  row.outcome.all_terminated = r.get_bool("all_terminated", false);
  row.outcome.premature_termination = r.get_bool("premature", false);
  row.outcome.fairness_interventions = r.get_int("fairness_interventions", 0);
  row.outcome.violations = static_cast<int>(r.get_int("violations", 0));
  row.outcome.stop_reason = r.get_string("stop_reason", "");
  return row;
}

std::string row_line(const CampaignRow& row) { return to_json(row).dump(); }

std::vector<CampaignRow> read_result_store(std::istream& in) {
  std::vector<CampaignRow> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      rows.push_back(campaign_row_from_json(util::Json::parse(line)));
    } catch (const std::exception& e) {
      throw std::invalid_argument("result store line " +
                                  std::to_string(line_no) + ": " + e.what());
    }
  }
  return rows;
}

std::unordered_set<std::uint64_t> load_fingerprints(const std::string& path) {
  std::unordered_set<std::uint64_t> fps;
  std::ifstream in(path);
  if (!in) return fps;
  for (const CampaignRow& row : read_result_store(in))
    fps.insert(row.fingerprint);
  return fps;
}

std::vector<CampaignRow> run_scenarios(const std::vector<ScenarioSpec>& specs,
                                       int threads) {
  std::vector<ScenarioTask> tasks;
  tasks.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) tasks.push_back(to_task(spec));

  SweepOptions options;
  options.threads = threads;
  const std::vector<sim::RunResult> results = run_sweep(tasks, options);

  std::vector<CampaignRow> rows(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    rows[i].spec = specs[i];
    rows[i].fingerprint = fingerprint(specs[i]);
    rows[i].outcome = outcome_of(results[i]);
  }
  return rows;
}

CampaignReport run_campaign(const CampaignSpec& campaign,
                            const CampaignOptions& options) {
  const std::vector<ScenarioSpec> all = expand(campaign);

  std::vector<ScenarioSpec> todo;
  std::size_t skipped = 0;
  if (options.resume && !options.out_path.empty()) {
    const std::unordered_set<std::uint64_t> done =
        load_fingerprints(options.out_path);
    for (const ScenarioSpec& spec : all) {
      if (done.count(fingerprint(spec)))
        ++skipped;
      else
        todo.push_back(spec);
    }
  } else {
    todo = all;
  }

  CampaignReport report;
  report.total = all.size();
  report.skipped = skipped;
  report.executed = todo.size();
  report.rows = run_scenarios(todo, options.threads);

  if (!options.out_path.empty() && !report.rows.empty()) {
    std::ofstream out(options.out_path, std::ios::app);
    if (!out)
      throw std::runtime_error("cannot open result store: " +
                               options.out_path);
    for (const CampaignRow& row : report.rows) out << row_line(row) << '\n';
  }
  return report;
}

StoreDiff diff_result_stores(const std::vector<CampaignRow>& a,
                             const std::vector<CampaignRow>& b) {
  // Last row wins per fingerprint (a resumed store never has duplicates,
  // but a hand-concatenated one might).
  std::map<std::uint64_t, CampaignRow> in_a, in_b;
  for (const CampaignRow& row : a) in_a[row.fingerprint] = row;
  for (const CampaignRow& row : b) in_b[row.fingerprint] = row;

  StoreDiff diff;
  for (const auto& [fp, row] : in_a) {
    const auto it = in_b.find(fp);
    if (it == in_b.end()) {
      diff.only_a.push_back(row);
    } else if (!(row.outcome == it->second.outcome)) {
      diff.changed.emplace_back(row, it->second);
    }
  }
  for (const auto& [fp, row] : in_b)
    if (!in_a.count(fp)) diff.only_b.push_back(row);
  return diff;
}

}  // namespace dring::core
