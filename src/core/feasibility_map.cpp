#include "core/feasibility_map.hpp"

#include <algorithm>
#include <iterator>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "core/sweep.hpp"
#include "util/table.hpp"

namespace dring::core {

namespace {

/// The scenario matrix of one algorithm, in (size-major, seed-minor) task
/// order. Seed 0 runs the static ring (no removals, full activation); the
/// rest run randomized hostile dynamics.
std::vector<ScenarioTask> build_tasks(algo::AlgorithmId id,
                                      const FeasibilitySweep& sweep) {
  std::vector<ScenarioTask> tasks;
  tasks.reserve(sweep.sizes.size() *
                static_cast<std::size_t>(sweep.seeds_per_size));
  for (const NodeId n : sweep.sizes) {
    for (int seed = 0; seed < sweep.seeds_per_size; ++seed) {
      ScenarioTask task;
      task.cfg = default_config(id, n);
      task.cfg.stop.max_rounds = sweep.max_rounds;
      task.seed = 0x9d5ULL * static_cast<std::uint64_t>(seed) + 17 * n;
      if (seed == 0) {
        task.make_adversary = [] {
          return std::make_unique<sim::NullAdversary>();
        };
      } else {
        const double removal = sweep.edge_removal_prob;
        const double activation = sweep.activation_prob;
        const std::uint64_t s = task.seed;
        task.make_adversary = [removal, activation, s]()
            -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::TargetedRandomAdversary>(
              removal, activation, s);
        };
      }
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

/// Fold one algorithm's result slice (task order) into its table row.
FeasibilityRow fold_row(algo::AlgorithmId id,
                        const FeasibilitySweep& sweep,
                        const std::vector<sim::RunResult>& slice) {
  FeasibilityRow row;
  row.meta = algo::info(id);
  const SweepReduction red = reduce_worst(slice);
  row.runs = red.runs;
  row.explored = red.explored;
  row.premature = red.premature;
  row.full_termination = red.full_termination;
  row.partial_termination = red.partial_termination;
  row.worst_rounds = red.worst_rounds;
  row.worst_moves = red.worst_moves;
  // Tasks are size-major, so the achieving task index maps back to a size.
  if (red.worst_rounds > 0)
    row.worst_rounds_n =
        sweep.sizes[red.worst_rounds_task /
                    static_cast<std::size_t>(sweep.seeds_per_size)];
  return row;
}

}  // namespace

FeasibilityRow evaluate_algorithm(algo::AlgorithmId id,
                                  const FeasibilitySweep& sweep) {
  const std::vector<ScenarioTask> tasks = build_tasks(id, sweep);
  SweepOptions options;
  options.threads = sweep.threads;
  return fold_row(id, sweep, run_sweep(tasks, options));
}

std::vector<FeasibilityRow> build_feasibility_map(
    const FeasibilitySweep& sweep) {
  // One flat task list over every algorithm, so the pool stays saturated
  // even when a single algorithm's scenarios are few or lopsided.
  std::vector<ScenarioTask> tasks;
  for (const algo::AlgorithmInfo& meta : algo::all_algorithms()) {
    std::vector<ScenarioTask> t = build_tasks(meta.id, sweep);
    std::move(t.begin(), t.end(), std::back_inserter(tasks));
  }
  SweepOptions options;
  options.threads = sweep.threads;
  const std::vector<sim::RunResult> results = run_sweep(tasks, options);

  const std::size_t per_algo =
      sweep.sizes.size() * static_cast<std::size_t>(sweep.seeds_per_size);
  std::vector<FeasibilityRow> rows;
  std::size_t first = 0;
  for (const algo::AlgorithmInfo& meta : algo::all_algorithms()) {
    const std::vector<sim::RunResult> slice(
        results.begin() + static_cast<std::ptrdiff_t>(first),
        results.begin() + static_cast<std::ptrdiff_t>(first + per_algo));
    rows.push_back(fold_row(meta.id, sweep, slice));
    first += per_algo;
  }
  return rows;
}

void print_feasibility_map(const std::vector<FeasibilityRow>& rows,
                           std::ostream& os) {
  util::Table table({"Algorithm", "Thm", "Model", "Agents", "Assumptions",
                     "Claimed", "Runs", "Explored", "Terminated", "Premature",
                     "Worst rounds", "Worst moves"});
  for (const FeasibilityRow& row : rows) {
    std::string assume;
    if (row.meta.needs_upper_bound) assume += "N ";
    if (row.meta.needs_exact_n) assume += "n ";
    if (row.meta.needs_landmark) assume += "landmark ";
    if (row.meta.needs_chirality) assume += "chirality";
    if (assume.empty()) assume = "none";

    std::string term;
    if (!row.meta.terminating) {
      term = "unconscious";
    } else if (row.full_termination == row.runs) {
      term = "explicit (all)";
    } else {
      term = std::to_string(row.partial_termination) + "/" +
             std::to_string(row.runs) + " partial";
    }

    table.add_row({row.meta.name, row.meta.theorem,
                   sim::to_string(row.meta.model),
                   std::to_string(row.meta.num_agents), assume,
                   row.meta.complexity, std::to_string(row.runs),
                   std::to_string(row.explored) + "/" +
                       std::to_string(row.runs),
                   term, std::to_string(row.premature),
                   util::fmt_count(row.worst_rounds),
                   util::fmt_count(row.worst_moves)});
  }
  table.print(os);
}

}  // namespace dring::core
