// Registry of every algorithm in the paper, with the assumptions each one
// requires (Tables 2 and 4).  The core runner and the benches construct
// brains through this registry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agent/brain.hpp"
#include "sim/models.hpp"

namespace dring::algo {

enum class AlgorithmId {
  // FSYNC (Table 2).
  KnownNNoChirality,             // Th. 3: 2 agents, bound N, 3N-6 rounds
  UnconsciousExploration,        // Th. 5: 2 agents, nothing, O(n), no term.
  LandmarkWithChirality,         // Th. 6: 2 agents, landmark+chirality, O(n)
  StartFromLandmarkNoChirality,  // Th. 7: 2 agents from landmark, O(n log n)
  LandmarkNoChirality,           // Th. 8: 2 agents, landmark, O(n log n)
  // SSYNC (Table 4).
  PTBoundWithChirality,    // Th. 12: PT, 2 agents, chirality+bound, O(N^2)
  PTLandmarkWithChirality, // Th. 14: PT, 2 agents, chirality+landmark, O(n^2)
  PTBoundNoChirality,      // Th. 16: PT, 3 agents, bound, O(N^2)
  PTLandmarkNoChirality,   // Th. 17: PT, 3 agents, landmark, O(n^2)
  ETUnconscious,           // Th. 18: ET, 2 agents, chirality, unconscious
  ETBoundNoChirality,      // Th. 20: ET, 3 agents, exact n
};

/// Static description of an algorithm's published requirements and claims.
struct AlgorithmInfo {
  AlgorithmId id;
  std::string name;
  std::string theorem;       ///< e.g. "Th. 3"
  sim::Model model;          ///< model the result is stated for
  int num_agents;            ///< number of agents the theorem uses
  bool needs_upper_bound;    ///< requires knowledge of N >= n
  bool needs_exact_n;        ///< requires knowledge of n
  bool needs_landmark;       ///< requires a landmark node
  bool needs_chirality;      ///< requires common chirality
  bool terminating;          ///< false for unconscious protocols
  std::string complexity;    ///< paper-claimed cost
};

/// All registered algorithms.
const std::vector<AlgorithmInfo>& all_algorithms();

/// Lookup by id.
const AlgorithmInfo& info(AlgorithmId id);

/// Lookup by name (exact match); throws std::invalid_argument if unknown.
const AlgorithmInfo& info_by_name(const std::string& name);

/// Instantiate a brain. `knowledge` must satisfy the algorithm's
/// requirements (validated; throws std::invalid_argument otherwise).
std::unique_ptr<agent::Brain> make_brain(AlgorithmId id,
                                         agent::Knowledge knowledge);

}  // namespace dring::algo
