#include "core/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace dring::core {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

void set_log_level(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= g_log_level.load(std::memory_order_relaxed);
}

LogLevel log_level_from_cli(const util::Cli& cli) {
  if (cli.get_bool("quiet", false)) return LogLevel::kQuiet;
  if (cli.get_bool("verbose", false)) return LogLevel::kDebug;
  return LogLevel::kInfo;
}

util::FlagTable& add_log_flags(util::FlagTable& flags) {
  return flags.flag("quiet", "", "errors only on stderr")
      .flag("verbose", "", "per-decision debug logging on stderr");
}

long long telemetry_now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               start)
      .count();
}

const std::vector<long long>& telemetry_time_bounds() {
  static const std::vector<long long> bounds =
      util::Histogram::exponential_bounds(64, 25);
  return bounds;
}

const std::vector<long long>& telemetry_round_bounds() {
  static const std::vector<long long> bounds =
      util::Histogram::exponential_bounds(1, 24);
  return bounds;
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  const double t_s = static_cast<double>(telemetry_now_us()) / 1e6;
  std::fprintf(stderr, "[+%8.3fs] %s\n", t_s, message.c_str());
}

// --- events ------------------------------------------------------------------

util::Json to_json(const TelemetryEvent& event) {
  util::Json labels{util::Json::Object{}};
  for (const auto& [key, value] : event.labels) labels.set(key, value);
  util::Json j;
  j.set("kind", event.kind);
  j.set("labels", std::move(labels));
  j.set("name", event.name);
  j.set("seq", event.seq);
  j.set("t_us", event.t_us);
  return j;
}

TelemetryEvent telemetry_event_from_json(const util::Json& j) {
  TelemetryEvent event;
  event.seq = j.at("seq").as_int();
  event.t_us = j.at("t_us").as_int();
  event.name = j.at("name").as_string();
  event.kind = j.at("kind").as_string();
  if (j.has("labels"))
    for (const auto& [key, value] : j.at("labels").as_object())
      event.labels[key] = value.as_string();
  return event;
}

// --- Telemetry ---------------------------------------------------------------

bool Telemetry::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

void Telemetry::enable(const std::string& base) {
  std::lock_guard<std::mutex> lock(mutex_);
  base_ = base;
  events_.close();
  events_.clear();
  events_.open(base + ".events.jsonl", std::ios::trunc);
  if (!events_)
    throw std::runtime_error("telemetry: cannot open " + base +
                             ".events.jsonl");
  seq_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Telemetry::shutdown() {
  if (!enabled()) return;
  write_metrics();
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  events_.flush();
  events_.close();
  metrics_.clear();
  base_.clear();
}

void Telemetry::emit(const std::string& kind, const std::string& name,
                     const std::map<std::string, std::string>& labels) {
  TelemetryEvent event;
  event.t_us = telemetry_now_us();
  event.name = name;
  event.kind = kind;
  event.labels = labels;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!events_.is_open()) return;
  event.seq = seq_++;
  events_ << to_json(event).dump() << '\n';
  // Events survive a later crash/kill of this process: the orchestrator's
  // post-mortem is exactly when the log matters most.
  events_.flush();
}

void Telemetry::event(const std::string& name,
                      std::map<std::string, std::string> labels) {
  if (!enabled()) return;
  emit("point", name, labels);
}

Telemetry::Span::Span(Telemetry& telemetry, std::string name,
                      std::map<std::string, std::string> labels)
    : telemetry_(telemetry.enabled() ? &telemetry : nullptr),
      name_(std::move(name)),
      labels_(std::move(labels)) {
  if (!telemetry_) return;
  t0_us_ = telemetry_now_us();
  telemetry_->emit("begin", name_, labels_);
}

Telemetry::Span::~Span() {
  if (!telemetry_) return;
  auto labels = labels_;
  labels["duration_us"] = std::to_string(telemetry_now_us() - t0_us_);
  telemetry_->emit("end", name_, labels);
}

Telemetry::Span Telemetry::span(const std::string& name,
                                std::map<std::string, std::string> labels) {
  return Span(*this, name, std::move(labels));
}

void Telemetry::write_metrics() {
  if (!enabled()) return;
  const std::string body = metrics_.snapshot_json().dump();
  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream out(base_ + ".metrics.json", std::ios::trunc);
  if (!out)
    throw std::runtime_error("telemetry: cannot open " + base_ +
                             ".metrics.json");
  out << body << '\n';
}

std::string Telemetry::events_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_.empty() ? std::string() : base_ + ".events.jsonl";
}

std::string Telemetry::metrics_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_.empty() ? std::string() : base_ + ".metrics.json";
}

Telemetry& telemetry() {
  static Telemetry instance;
  return instance;
}

// --- rendering ---------------------------------------------------------------

std::vector<TelemetryEvent> read_events_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open event log: " + path);
  std::vector<TelemetryEvent> events;
  std::string line;
  long long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      events.push_back(telemetry_event_from_json(util::Json::parse(line)));
    } catch (const std::exception& e) {
      throw std::invalid_argument(path + ":" + std::to_string(line_no) +
                                  ": bad event line: " + e.what());
    }
  }
  return events;
}

namespace {

/// "2" < "10" when both labels are numeric; lexicographic otherwise.
bool shard_key_less(const std::string& a, const std::string& b) {
  const bool a_num = !a.empty() && a.find_first_not_of("0123456789") ==
                                       std::string::npos;
  const bool b_num = !b.empty() && b.find_first_not_of("0123456789") ==
                                       std::string::npos;
  if (a_num && b_num) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  }
  if (a_num != b_num) return a_num;  // numeric shards before named ones
  return a < b;
}

/// The event's labels as "k=v k=v", minus `skip_label` and — unless
/// `with_times` — the wall-clock span durations, so the default rendering
/// stays byte-stable for a fixed fault schedule.
std::string event_labels_text(const TelemetryEvent& event, bool with_times,
                              const std::string& skip_label) {
  std::string text;
  for (const auto& [key, value] : event.labels) {
    if (key == skip_label) continue;
    if (!with_times && key == "duration_us") continue;
    if (!text.empty()) text += ' ';
    text += key + "=" + value;
  }
  return text;
}

std::string format_event_line(const TelemetryEvent& event, bool with_times,
                              const std::string& skip_label) {
  std::string line = "- ";
  if (with_times) {
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "[+%.3fs] ",
                  static_cast<double>(event.t_us) / 1e6);
    line += stamp;
  }
  if (event.kind != "point") line += "[" + event.kind + "] ";
  line += event.name;
  const std::string labels = event_labels_text(event, with_times, skip_label);
  if (!labels.empty()) line += " " + labels;
  return line;
}

}  // namespace

std::string render_timeline(const std::vector<TelemetryEvent>& events,
                            bool with_times, ReportFormat format) {
  // Group by shard label; emission order (seq) within each group is a pure
  // function of the fault schedule, even though the cross-shard
  // interleaving is not.
  std::vector<const TelemetryEvent*> run_events;
  std::map<std::string, std::vector<const TelemetryEvent*>, decltype(
                                                                &shard_key_less)>
      by_shard(&shard_key_less);
  for (const auto& event : events) {
    const auto it = event.labels.find("shard");
    if (it == event.labels.end())
      run_events.push_back(&event);
    else
      by_shard[it->second].push_back(&event);
  }
  const auto by_seq = [](const TelemetryEvent* a, const TelemetryEvent* b) {
    return a->seq < b->seq;
  };
  std::sort(run_events.begin(), run_events.end(), by_seq);

  if (format == ReportFormat::Csv) {
    // One flat table, same grouping and ordering as the markdown
    // sections; the shard-less leading section keys as "run".
    std::vector<std::string> header = {"shard", "kind", "name", "labels"};
    if (with_times) header.insert(header.begin() + 1, "t_us");
    std::string out = render_cells(header, format);
    const auto emit = [&](const std::string& shard,
                          const TelemetryEvent& event,
                          const std::string& skip_label) {
      std::vector<std::string> cells = {shard};
      if (with_times) cells.push_back(std::to_string(event.t_us));
      cells.push_back(event.kind);
      cells.push_back(event.name);
      cells.push_back(event_labels_text(event, with_times, skip_label));
      out += render_cells(cells, format);
    };
    for (const auto* event : run_events) emit("run", *event, "");
    for (auto& [shard, shard_events] : by_shard) {
      std::sort(shard_events.begin(), shard_events.end(), by_seq);
      for (const auto* event : shard_events) emit(shard, *event, "shard");
    }
    return out;
  }

  std::string out = "# timeline\n";
  if (!run_events.empty()) {
    out += "\n## run\n\n";
    for (const auto* event : run_events)
      out += format_event_line(*event, with_times, "") + "\n";
  }
  for (auto& [shard, shard_events] : by_shard) {
    std::sort(shard_events.begin(), shard_events.end(), by_seq);
    out += "\n## shard " + shard + "\n\n";
    for (const auto* event : shard_events)
      out += format_event_line(*event, with_times, "shard") + "\n";
  }
  return out;
}

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

}  // namespace

std::string render_metrics_summary(const util::Json& metrics,
                                   ReportFormat format) {
  const util::Json empty{util::Json::Object{}};
  const util::Json& counters =
      metrics.has("counters") ? metrics.at("counters") : empty;
  const util::Json& gauges =
      metrics.has("gauges") ? metrics.at("gauges") : empty;
  const util::Json& histograms =
      metrics.has("histograms") ? metrics.at("histograms") : empty;

  // Derived rates, shared by both formats, when their inputs were
  // instrumented.
  std::vector<std::pair<std::string, std::string>> derived_rows;
  {
    const long long probe_calls = counters.get_int("engine.probe_calls", 0);
    const long long probe_hits = counters.get_int("engine.probe_hits", 0);
    if (probe_calls > 0)
      derived_rows.emplace_back(
          "engine probe-memo hit rate",
          format_double(100.0 * static_cast<double>(probe_hits) /
                        static_cast<double>(probe_calls)) +
              "%");
    const long long resume_hits = counters.get_int("campaign.resume_hits", 0);
    const long long cells = counters.get_int("campaign.cells_executed", 0);
    if (resume_hits + cells > 0)
      derived_rows.emplace_back(
          "campaign resume-cache hit rate",
          format_double(100.0 * static_cast<double>(resume_hits) /
                        static_cast<double>(resume_hits + cells)) +
              "%");
    if (gauges.has("sweep.batch.lane_utilization"))
      derived_rows.emplace_back(
          "sweep batch lane utilization",
          format_double(
              100.0 * gauges.at("sweep.batch.lane_utilization").as_double()) +
              "%");
    if (histograms.has("sweep.batch.retire_rounds")) {
      const util::Json& h = histograms.at("sweep.batch.retire_rounds");
      const long long count = h.get_int("count", 0);
      if (count > 0)
        derived_rows.emplace_back(
            "sweep batch mean lane lifetime",
            format_double(static_cast<double>(h.get_int("sum", 0)) /
                          static_cast<double>(count)) +
                " rounds");
    }
    const long long query_hits = counters.get_int("query.cache.hits", 0);
    const long long query_misses = counters.get_int("query.cache.misses", 0);
    if (query_hits + query_misses > 0)
      derived_rows.emplace_back(
          "query cache hit rate",
          format_double(100.0 * static_cast<double>(query_hits) /
                        static_cast<double>(query_hits + query_misses)) +
              "%");
    if (histograms.has("query.latency_us")) {
      const util::Json& h = histograms.at("query.latency_us");
      const long long count = h.get_int("count", 0);
      if (count > 0)
        derived_rows.emplace_back(
            "query mean latency",
            format_double(static_cast<double>(h.get_int("sum", 0)) /
                          static_cast<double>(count)) +
                " us");
    }
  }

  if (format == ReportFormat::Csv) {
    std::string out =
        render_cells({"kind", "name", "value", "count", "sum"}, format);
    for (const auto& [name, value] : counters.as_object())
      out += render_cells(
          {"counter", name, std::to_string(value.as_int()), "-", "-"}, format);
    for (const auto& [name, value] : gauges.as_object())
      out += render_cells(
          {"gauge", name, format_double(value.as_double()), "-", "-"}, format);
    for (const auto& [name, h] : histograms.as_object()) {
      const long long count = h.get_int("count", 0);
      const long long sum = h.get_int("sum", 0);
      const std::string mean =
          count > 0 ? format_double(static_cast<double>(sum) /
                                    static_cast<double>(count))
                    : "-";
      out += render_cells({"histogram", name, mean, std::to_string(count),
                           std::to_string(sum)},
                          format);
    }
    for (const auto& [name, value] : derived_rows)
      out += render_cells({"derived", name, value, "-", "-"}, format);
    return out;
  }

  std::string out = "# metrics\n";
  if (!counters.as_object().empty()) {
    out += "\n## counters\n\n| counter | value |\n|---|---|\n";
    for (const auto& [name, value] : counters.as_object())
      out += "| " + name + " | " + std::to_string(value.as_int()) + " |\n";
  }
  if (!gauges.as_object().empty()) {
    out += "\n## gauges\n\n| gauge | value |\n|---|---|\n";
    for (const auto& [name, value] : gauges.as_object())
      out += "| " + name + " | " + format_double(value.as_double()) + " |\n";
  }
  if (!histograms.as_object().empty()) {
    out += "\n## histograms\n\n| histogram | count | sum | mean |\n"
           "|---|---|---|---|\n";
    for (const auto& [name, h] : histograms.as_object()) {
      const long long count = h.get_int("count", 0);
      const long long sum = h.get_int("sum", 0);
      const std::string mean =
          count > 0 ? format_double(static_cast<double>(sum) /
                                    static_cast<double>(count))
                    : "-";
      out += "| " + name + " | " + std::to_string(count) + " | " +
             std::to_string(sum) + " | " + mean + " |\n";
    }
  }

  if (!derived_rows.empty()) {
    out += "\n## derived\n\n| quantity | value |\n|---|---|\n";
    for (const auto& [name, value] : derived_rows)
      out += "| " + name + " | " + value + " |\n";
  }
  return out;
}

std::string render_bench_trend(const util::Json& bench, ReportFormat format) {
  const util::Json empty{util::Json::Object{}};
  const util::Json& baseline =
      bench.has("baseline") ? bench.at("baseline") : empty;
  const util::Json& current = bench.has("current") ? bench.at("current") : empty;
  const util::Json& speedup =
      bench.has("speedup_vs_baseline") ? bench.at("speedup_vs_baseline") : empty;
  const util::Json::Array no_history;
  const util::Json::Array& history =
      bench.has("history") ? bench.at("history").as_array() : no_history;

  if (format == ReportFormat::Csv) {
    // One flat table: current/baseline eras first, then every retired
    // rebaseline era (history entries, oldest first).
    std::string out = render_cells({"benchmark", "era", "real_time_ns",
                                    "items_per_second", "speedup"},
                                   format);
    const auto emit_marks = [&](const util::Json& marks,
                                const std::string& era, bool with_speedup) {
      for (const auto& [name, mark] : marks.as_object()) {
        std::string speed = "-";
        if (with_speedup && speedup.has(name))
          speed = format_double(speedup.at(name).as_double());
        out += render_cells(
            {name, era, format_double(mark.get_double("real_time_ns", 0.0)),
             format_double(mark.get_double("items_per_second", 0.0)), speed},
            format);
      }
    };
    emit_marks(baseline, "baseline", false);
    emit_marks(current, "current", true);
    for (const util::Json& era : history) {
      const std::string label = "history:" + era.get_string("engine", "?") +
                                "@" + era.get_string("date", "?");
      if (era.has("marks")) emit_marks(era.at("marks"), label, false);
    }
    return out;
  }

  std::string out =
      "# engine perf trend\n\n"
      "| benchmark | baseline ns | current ns | speedup |\n"
      "|---|---|---|---|\n";
  for (const auto& [name, cur] : current.as_object()) {
    const double cur_ns = cur.get_double("real_time_ns", 0.0);
    std::string base_ns = "-";
    if (baseline.has(name))
      base_ns = format_double(baseline.at(name).get_double("real_time_ns", 0.0));
    std::string speed = "-";
    if (speedup.has(name))
      speed = format_double(speedup.at(name).as_double()) + "x";
    out += "| " + name + " | " + base_ns + " | " + format_double(cur_ns) +
           " | " + speed + " |\n";
  }
  if (!history.empty()) {
    // Rebaseline eras: the trajectories --rebaseline retired, so the
    // perf record survives a moving reference point.
    out += "\n## rebaseline history\n\n"
           "| era | benchmark | real_time_ns | items_per_second |\n"
           "|---|---|---|---|\n";
    for (const util::Json& era : history) {
      const std::string label = era.get_string("engine", "?") + " (" +
                                era.get_string("date", "?") + ")";
      if (!era.has("marks")) continue;
      for (const auto& [name, mark] : era.at("marks").as_object())
        out += "| " + label + " | " + name + " | " +
               format_double(mark.get_double("real_time_ns", 0.0)) + " | " +
               format_double(mark.get_double("items_per_second", 0.0)) +
               " |\n";
    }
  }
  return out;
}

}  // namespace dring::core
