// Transport-model comparison: the same scenario (ring, protocol,
// randomized hostile schedule) run under the three SSYNC transport models
// — NS, PT, ET — to make the paper's model separation tangible:
//
//   * NS: a sleeping agent on a port never moves; exploration is
//     impossible (Theorem 9) — and even fair random schedules crawl.
//   * PT: a sleeping agent is carried across a present edge; the paper's
//     3-agent protocol explores with partial termination (Theorem 16).
//   * ET: no transport, but a sleeping agent eventually acts on a present
//     edge; the protocol with exact n explores (Theorem 20).
//
//   ./transport_models [--n=9] [--seeds=5]
#include <iostream>
#include <memory>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const NodeId n = static_cast<NodeId>(cli.get_int("n", 9));
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));

  std::cout << "Three agents, no chirality, hostile random schedule, ring "
               "of size " << n << ".\n\n";

  util::Table table({"Model", "Protocol / knowledge", "Seed", "Explored",
                     "Rounds", "Moves (active+passive)", "Terminated",
                     "Fairness interventions"});

  for (int seed = 1; seed <= seeds; ++seed) {
    // NS: run the PT protocol (it cannot rely on transport) under the
    // Theorem 9 scheduler — nothing ever moves.
    {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::PTBoundNoChirality, n);
      cfg.model = sim::Model::SSYNC_NS;
      cfg.engine.fairness_window = 1 << 20;
      cfg.stop.max_rounds = 30'000;
      cfg.stop.stop_when_all_terminated = false;
      cfg.stop.stop_when_explored_and_one_terminated = false;
      adversary::NsFirstMoverAdversary adv;
      const sim::RunResult r = core::run_exploration(cfg, &adv);
      table.add_row({"NS", "PTBoundNoChirality (bound N)",
                     "th9-scheduler", r.explored ? "yes" : "no",
                     util::fmt_count(r.rounds),
                     std::to_string(r.active_moves) + "+" +
                         std::to_string(r.passive_moves),
                     std::to_string(r.terminated_agents) + "/3",
                     std::to_string(r.fairness_interventions)});
    }
    // PT: passive transport does part of the work.
    {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::PTBoundNoChirality, n);
      cfg.stop.max_rounds = 4000LL * n * n;
      adversary::TargetedRandomAdversary adv(0.6, 0.5, 7ULL * seed + n);
      const sim::RunResult r = core::run_exploration(cfg, &adv);
      table.add_row({"PT", "PTBoundNoChirality (bound N)",
                     std::to_string(seed), r.explored ? "yes" : "no",
                     util::fmt_count(r.rounds),
                     std::to_string(r.active_moves) + "+" +
                         std::to_string(r.passive_moves),
                     std::to_string(r.terminated_agents) + "/3",
                     std::to_string(r.fairness_interventions)});
    }
    // ET: no transport; the simultaneity condition supplies liveness.
    {
      core::ExplorationConfig cfg =
          core::default_config(algo::AlgorithmId::ETBoundNoChirality, n);
      cfg.stop.max_rounds = 4000LL * n * n;
      adversary::TargetedRandomAdversary adv(0.6, 0.5, 7ULL * seed + n);
      const sim::RunResult r = core::run_exploration(cfg, &adv);
      table.add_row({"ET", "ETBoundNoChirality (exact n)",
                     std::to_string(seed), r.explored ? "yes" : "no",
                     util::fmt_count(r.rounds),
                     std::to_string(r.active_moves) + "+" +
                         std::to_string(r.passive_moves),
                     std::to_string(r.terminated_agents) + "/3",
                     std::to_string(r.fairness_interventions)});
    }
  }

  table.print(std::cout);
  std::cout << "\nNS never explores (moves stay 0); PT runs show passive "
               "moves (agents carried across edges while asleep); ET runs "
               "show fairness interventions where the engine enforced the "
               "eventual-transport condition against the schedule.\n";
  return 0;
}
