// Campaign report generator: aggregate tables and feasibility frontiers
// over JSONL result stores (core/analysis.hpp).
//
//   dring_report --store results.jsonl [--store more.jsonl ...] \
//       [--group-by algorithm,n] [--metric explored_round] \
//       [--frontier t_interval] [--threshold 0.5] [--format md|csv|json]
//
// Stores are unioned by fingerprint (conflicting payloads are an error —
// shards of one campaign always merge cleanly).  Without --frontier the
// output is a group-by aggregate table: runs, successes, success rate and
// the metric's min/mean/median/p95/max plus per-seed dispersion.  With
// --frontier AXIS, each group's success rate is scanned along the numeric
// axis and every threshold crossing — the feasibility frontier — is
// reported.  Output is deterministic and byte-stable for a given row set,
// so reports can be committed next to their campaign spec and diffed
// across commits.
#include <iostream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "util/cli.hpp"

namespace {

using namespace dring;

std::vector<std::string> split_keys(const std::string& list) {
  std::vector<std::string> keys;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      if (!current.empty()) keys.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) keys.push_back(current);
  return keys;
}

int usage() {
  std::cerr
      << "usage: dring_report --store results.jsonl [--store more.jsonl ...]\n"
         "           [--group-by algorithm,n] [--metric explored_round]\n"
         "           [--frontier AXIS] [--threshold 0.5]\n"
         "           [--format md|csv|json]\n"
         "metrics: explored_round (successful runs), rounds, moves\n"
         "axes:    algorithm n agents adversary t_interval model max_rounds\n"
         "         remove_prob target_prob activation_prob\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  std::vector<std::string> stores = cli.get_all("store");
  for (const std::string& p : cli.positional()) stores.push_back(p);
  if (stores.empty()) return usage();

  try {
    const std::vector<core::CampaignRow> rows =
        core::load_result_stores(stores);

    std::vector<std::string> group_keys;
    for (const std::string& key : split_keys(cli.get("group-by", "algorithm")))
      group_keys.push_back(core::canonical_axis(key));
    const core::ReportFormat format =
        core::report_format_from_string(cli.get("format", "md"));

    std::string report;
    if (cli.has("frontier")) {
      const std::string axis = core::canonical_axis(cli.get("frontier", ""));
      const double threshold = cli.get_double("threshold", 0.5);
      report = core::render_frontier_report(
          core::detect_frontier(rows, group_keys, axis, threshold),
          group_keys, axis, threshold, format);
    } else {
      const core::Metric metric =
          core::metric_from_string(cli.get("metric", "explored_round"));
      report = core::render_aggregate_report(
          core::aggregate_rows(rows, group_keys, metric), group_keys, metric,
          format);
    }
    std::cout << report;
  } catch (const std::exception& e) {
    std::cerr << "dring_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
