// Telemetry renderer: per-shard attempt timelines, metrics summaries and
// the engine perf trend, from the sidecar files the other tools emit.
//
//   dring_metrics --events run.jsonl.events.jsonl [--times]
//   dring_metrics --metrics run.jsonl.metrics.json
//   dring_metrics --bench BENCH_engine.json
//   any of the above with --format md|json
//
// `--events` renders the orchestrator attempt timeline grouped by shard:
// every dispatch, worker exit, kill, retry (with its backoff delay),
// give-up and speculation event, in emission order.  Timestamps are
// omitted unless --times, so for a fixed fault schedule the default
// rendering is byte-stable — CI pins the timeline of the fault-injected
// gate run.  `--metrics` summarizes a metrics snapshot (counters, gauges,
// histogram means, derived rates such as the probe-memo hit rate).
// `--bench` folds the committed BENCH_engine.json into a trend table —
// the first data spine for the ROADMAP trend-dashboard item.  --format
// json re-emits the parsed document canonically (sorted keys) instead of
// markdown, for downstream tooling.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/telemetry.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace dring;

util::FlagTable flag_table() {
  util::FlagTable flags("dring_metrics",
                        "render telemetry sidecars: per-shard attempt "
                        "timelines, metrics summaries, perf trends");
  flags.synopsis("dring_metrics --events FILE.events.jsonl [--times]"
                 " [--format md|json]")
      .synopsis("dring_metrics --metrics FILE.metrics.json [--format md|json]")
      .synopsis("dring_metrics --bench BENCH_engine.json [--format md|json]")
      .flag("events", "FILE", "event log to render as a per-shard timeline")
      .flag("times", "", "include wall-clock stamps and span durations "
                         "(timing varies run to run; off by default so the "
                         "timeline is byte-stable)")
      .flag("metrics", "FILE", "metrics snapshot to summarize")
      .flag("bench", "FILE", "perf snapshot (BENCH_engine.json) to render "
                             "as a trend table")
      .flag("format", "F", "md (default) or json");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("sidecars: dring_campaign/dring_orchestrate --telemetry write "
            "<out>.events.jsonl and <out>.metrics.json next to the store");
  return flags;
}

util::Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return util::Json::parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();
  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  const std::string format = cli.get("format", "md");
  if (format != "md" && format != "json") {
    std::cerr << "dring_metrics: unknown --format '" << format << "'\n";
    return 2;
  }
  const int selected = (cli.has("events") ? 1 : 0) +
                       (cli.has("metrics") ? 1 : 0) +
                       (cli.has("bench") ? 1 : 0);
  if (selected != 1) {
    std::cerr << "dring_metrics: pass exactly one of --events, --metrics, "
                 "--bench\n"
              << flags.help_text();
    return 2;
  }

  try {
    if (cli.has("events")) {
      const std::vector<core::TelemetryEvent> events =
          core::read_events_file(cli.get("events", ""));
      core::log_line(core::LogLevel::kDebug,
                     "loaded " + std::to_string(events.size()) + " events");
      if (format == "json") {
        util::Json::Array out;
        for (const auto& event : events)
          out.push_back(core::to_json(event));
        std::cout << util::Json(std::move(out)).dump() << "\n";
      } else {
        std::cout << core::render_timeline(events,
                                           cli.get_bool("times", false));
      }
    } else if (cli.has("metrics")) {
      const util::Json metrics = read_json_file(cli.get("metrics", ""));
      if (format == "json")
        std::cout << metrics.dump() << "\n";
      else
        std::cout << core::render_metrics_summary(metrics);
    } else {
      const util::Json bench = read_json_file(cli.get("bench", ""));
      if (format == "json")
        std::cout << bench.dump() << "\n";
      else
        std::cout << core::render_bench_trend(bench);
    }
  } catch (const std::exception& e) {
    std::cerr << "dring_metrics: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
