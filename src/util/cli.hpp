// Tiny command line flag parser for examples and benches.
//
// Supports `--name=value`, `--name value` and boolean `--name` flags.
// Unknown flags are collected so callers can decide whether to reject them
// (google-benchmark binaries forward their own flags).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dring::util {

/// Parsed command line: `--key=value` pairs plus positional arguments.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Every value of a repeatable flag, in command-line order
  /// (`--store a --store b` -> {"a", "b"}; `get` returns only the last).
  std::vector<std::string> get_all(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::pair<std::string, std::string>> ordered_;  ///< all occurrences
  std::vector<std::string> positional_;
};

/// Parse a `--shard i/m` value into (index, count); (index, count)
/// untouched when `text` is empty.  The whole string must be consumed —
/// `1/2/4` or `0/2x` are errors, not silently-truncated shard geometries.
/// Returns false on any malformed or out-of-range input.
bool parse_shard(const std::string& text, int& index, int& count);

/// Declarative flag table shared by the dring_* tools: one place for the
/// flag list, the --help text and unknown-flag rejection, so the three
/// CLIs present one interface instead of three hand-rolled usage blocks.
///
///   FlagTable flags("dring_report", "aggregate tables over result stores");
///   flags.synopsis("dring_report --store results.jsonl [--group-by ...]")
///        .flag("store", "FILE", "result store to load (repeatable)")
///        .flag("help", "", "print this help")
///        .note("metrics: explored_round, rounds, moves");
///   if (cli.get_bool("help", false)) { std::cout << flags.help_text(); ... }
///   if (const auto err = flags.unknown_flags(cli)) { /* hard error */ }
class FlagTable {
 public:
  FlagTable(std::string tool, std::string summary);

  /// Add a usage line (repeatable; rendered in declaration order).
  FlagTable& synopsis(std::string line);
  /// Declare a flag; `value` is the placeholder shown after the name
  /// (empty for boolean flags).
  FlagTable& flag(std::string name, std::string value, std::string help);
  /// Add a trailing free-form help line (metrics lists, axis lists, ...).
  FlagTable& note(std::string line);

  /// The formatted --help text (summary, synopses, aligned flag table,
  /// notes).
  std::string help_text() const;

  /// nullopt when every parsed flag is declared; otherwise an error
  /// message naming the unknown flags.  Tools treat this as a hard error
  /// — a typo must not be silently ignored.
  std::optional<std::string> unknown_flags(const Cli& cli) const;

 private:
  struct Entry {
    std::string name;
    std::string value;
    std::string help;
  };

  std::string tool_;
  std::string summary_;
  std::vector<std::string> synopses_;
  std::vector<Entry> entries_;
  std::vector<std::string> notes_;
};

}  // namespace dring::util
