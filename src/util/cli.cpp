#include "util/cli.hpp"

#include <cstdlib>

namespace dring::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";
    }
    flags_[name] = value;
    ordered_.emplace_back(std::move(name), std::move(value));
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Cli::get_all(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [flag, value] : ordered_)
    if (flag == name) values.push_back(value);
  return values;
}

}  // namespace dring::util
