#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace dring::sim {

// ---------------------------------------------------------------------------
// WorldView
// ---------------------------------------------------------------------------

Round WorldView::round() const { return engine_->round_; }
NodeId WorldView::ring_size() const { return engine_->ring_.size(); }
int WorldView::num_agents() const { return engine_->num_agents(); }
NodeId WorldView::node_of(AgentId a) const { return engine_->bodies_[a].node; }
bool WorldView::on_port(AgentId a) const { return engine_->bodies_[a].on_port; }
GlobalDir WorldView::port_side(AgentId a) const {
  return engine_->bodies_[a].port_side;
}
bool WorldView::terminated(AgentId a) const {
  return engine_->bodies_[a].terminated;
}
bool WorldView::active_last_round(AgentId a) const {
  return engine_->bodies_[a].last_active_round == engine_->round_ - 1;
}
Round WorldView::idle_rounds(AgentId a) const {
  return engine_->round_ - 1 - engine_->bodies_[a].last_active_round;
}
const std::vector<bool>& WorldView::visited() const {
  return engine_->visited_;
}

agent::Intent WorldView::probe_intent(AgentId a) const {
  const AgentBody& body = engine_->bodies_[a];
  if (body.terminated) return agent::Intent::stay();
  auto clone = engine_->brains_[a]->clone();
  return clone->on_activate(engine_->make_snapshot(a), body.outcome);
}

std::optional<GlobalDir> WorldView::probe_move(AgentId a) const {
  const agent::Intent intent = probe_intent(a);
  if (intent.kind != agent::Intent::Kind::Move) return std::nullopt;
  return engine_->bodies_[a].orientation.to_global(intent.dir);
}

EdgeId WorldView::edge_towards(AgentId a, GlobalDir d) const {
  return engine_->ring_.edge_from(engine_->bodies_[a].node, d);
}

// ---------------------------------------------------------------------------
// Adversary defaults
// ---------------------------------------------------------------------------

std::vector<bool> Adversary::select_active(const WorldView& view) {
  return std::vector<bool>(static_cast<std::size_t>(view.num_agents()), true);
}

std::optional<EdgeId> Adversary::choose_missing_edge(
    const WorldView& /*view*/, const std::vector<IntentRecord>& /*intents*/) {
  return std::nullopt;
}

void Adversary::order_port_contenders(const WorldView& /*view*/,
                                      PortRef /*port*/,
                                      std::vector<AgentId>& /*contenders*/) {}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(NodeId n, std::optional<NodeId> landmark, Model model,
               EngineOptions options)
    : ring_(n, landmark),
      model_(model),
      options_(options),
      adversary_(&null_adversary_),
      visited_(static_cast<std::size_t>(n), false) {}

AgentId Engine::add_agent(NodeId start, agent::Orientation orientation,
                          std::unique_ptr<agent::Brain> brain) {
  assert(start >= 0 && start < ring_.size());
  const AgentId id = static_cast<AgentId>(bodies_.size());
  AgentBody body;
  body.id = id;
  body.node = start;
  body.orientation = orientation;
  bodies_.push_back(body);
  brains_.push_back(std::move(brain));
  mark_visited(start);
  return id;
}

void Engine::set_adversary(Adversary* adversary) {
  adversary_ = adversary != nullptr ? adversary : &null_adversary_;
}

void Engine::mark_visited(NodeId v) {
  if (!visited_[static_cast<std::size_t>(v)]) {
    visited_[static_cast<std::size_t>(v)] = true;
    ++visited_count_;
    if (visited_count_ == ring_.size() && explored_round_ < 0)
      explored_round_ = round_;
  }
}

agent::Snapshot Engine::make_snapshot(AgentId a) const {
  const AgentBody& self = bodies_[a];
  agent::Snapshot snap;
  snap.is_landmark = ring_.is_landmark(self.node);
  snap.on_port = self.on_port;
  if (self.on_port) snap.port_dir = self.orientation.to_local(self.port_side);
  for (const AgentBody& other : bodies_) {
    if (other.id == a || other.node != self.node) continue;
    if (other.on_port) {
      if (self.orientation.to_local(other.port_side) == Dir::Left) {
        snap.others_on_left_port += 1;
      } else {
        snap.others_on_right_port += 1;
      }
    } else {
      snap.others_in_node += 1;
    }
  }
  return snap;
}

std::vector<bool> Engine::decide_activation() {
  const WorldView view(*this);
  std::vector<bool> active;
  if (model_ == Model::FSYNC) {
    active.assign(bodies_.size(), true);
  } else {
    active = adversary_->select_active(view);
    active.resize(bodies_.size(), false);
  }

  // Terminated agents never activate.
  for (const AgentBody& b : bodies_)
    if (b.terminated) active[static_cast<std::size_t>(b.id)] = false;

  // A round activates a non-empty subset of the (live) agents.
  const bool none =
      std::none_of(active.begin(), active.end(), [](bool x) { return x; });
  if (none) {
    bool any_live = false;
    for (const AgentBody& b : bodies_) {
      if (!b.terminated) {
        active[static_cast<std::size_t>(b.id)] = true;
        any_live = true;
      }
    }
    if (!any_live) return active;  // everyone terminated
    if (model_ != Model::FSYNC) ++fairness_interventions_;
  }

  // Activation fairness: no live agent sleeps longer than the window.
  if (model_ != Model::FSYNC) {
    for (AgentBody& b : bodies_) {
      if (b.terminated || active[static_cast<std::size_t>(b.id)]) continue;
      const Round idle = round_ - 1 - b.last_active_round;
      if (idle >= options_.fairness_window) {
        active[static_cast<std::size_t>(b.id)] = true;
        ++fairness_interventions_;
      }
    }
  }
  return active;
}

bool Engine::step() {
  const bool any_live = std::any_of(bodies_.begin(), bodies_.end(),
                                    [](const AgentBody& b) {
                                      return !b.terminated;
                                    });
  if (!any_live) return false;

  ++round_;
  ring_.restore_edges();
  const WorldView view(*this);

  // --- Phase 1: activation -------------------------------------------------
  std::vector<bool> active = decide_activation();

  // ET simultaneity enforcement: force-activate agents whose budget of
  // "edge present while I slept" rounds is exhausted, and remember their
  // edges so the adversary's removal can be vetoed below.
  std::vector<EdgeId> et_protected;
  if (model_ == Model::SSYNC_ET) {
    for (AgentBody& b : bodies_) {
      if (b.terminated || !b.on_port) continue;
      if (b.et_missed_present >= options_.et_budget) {
        if (!active[static_cast<std::size_t>(b.id)]) {
          active[static_cast<std::size_t>(b.id)] = true;
          ++fairness_interventions_;
        }
        et_protected.push_back(ring_.edge_from(b.node, b.port_side));
        b.et_missed_present = 0;
      }
    }
  }

  // --- Phase 2: Look & Compute ---------------------------------------------
  struct Computed {
    AgentId agent;
    agent::Intent intent;
  };
  std::vector<Computed> computed;
  computed.reserve(bodies_.size());
  for (AgentBody& b : bodies_) {
    if (!active[static_cast<std::size_t>(b.id)]) continue;
    const agent::Snapshot snap = make_snapshot(b.id);
    const agent::Feedback fb = b.outcome;
    b.outcome = {};
    const agent::Intent intent = brains_[b.id]->on_activate(snap, fb);
    computed.push_back({b.id, intent});
    b.last_active_round = round_;
  }

  // --- Phase 3: terminations, releases, then port acquisition ---------------
  // 3a. terminations and explicit port releases.
  for (const Computed& cmp : computed) {
    AgentBody& b = bodies_[cmp.agent];
    switch (cmp.intent.kind) {
      case agent::Intent::Kind::Terminate:
        b.terminated = true;
        b.termination_round = round_;
        // Correctness oracle: the terminal state may be entered only after
        // the exploration of the ring (paper, Section 2.1).
        if (!explored()) premature_termination_ = true;
        break;
      case agent::Intent::Kind::StepOff:
        if (b.on_port) {
          ring_.release_port({b.node, b.port_side}, b.id);
          b.on_port = false;
        }
        break;
      case agent::Intent::Kind::Move: {
        const GlobalDir gd = b.orientation.to_global(cmp.intent.dir);
        if (b.on_port && b.port_side != gd) {
          // Direction change: leave the old port before contending.
          ring_.release_port({b.node, b.port_side}, b.id);
          b.on_port = false;
        }
        break;
      }
      case agent::Intent::Kind::Stay:
        break;  // stays wherever it is (possibly asleep on a port)
    }
  }

  // 3b. group movers by target port and resolve mutual exclusion.
  std::map<std::pair<NodeId, int>, std::vector<AgentId>> contenders;
  for (const Computed& cmp : computed) {
    AgentBody& b = bodies_[cmp.agent];
    if (b.terminated || cmp.intent.kind != agent::Intent::Kind::Move) continue;
    const GlobalDir gd = b.orientation.to_global(cmp.intent.dir);
    b.outcome.attempted_move = true;
    b.outcome.attempted_dir = cmp.intent.dir;
    if (b.on_port && b.port_side == gd) {
      b.outcome.port_acquired = true;  // keeps the port it already holds
      continue;
    }
    contenders[{b.node, gd == GlobalDir::Ccw ? 0 : 1}].push_back(cmp.agent);
  }
  for (auto& [key, agents] : contenders) {
    const PortRef port{key.first,
                       key.second == 0 ? GlobalDir::Ccw : GlobalDir::Cw};
    adversary_->order_port_contenders(view, port, agents);
    for (AgentId a : agents) {
      AgentBody& b = bodies_[a];
      if (!b.outcome.port_acquired && ring_.acquire_port(port, a)) {
        b.on_port = true;
        b.port_side = port.side;
        b.outcome.port_acquired = true;
      }
    }
  }

  // --- Phase 4: adversarial edge removal ------------------------------------
  std::vector<IntentRecord> records;
  records.reserve(computed.size());
  for (const Computed& cmp : computed) {
    const AgentBody& b = bodies_[cmp.agent];
    IntentRecord rec;
    rec.agent = cmp.agent;
    rec.intent = cmp.intent;
    if (cmp.intent.kind == agent::Intent::Kind::Move) {
      const GlobalDir gd = b.orientation.to_global(cmp.intent.dir);
      rec.move = gd;
      rec.target_edge = ring_.edge_from(b.node, gd);
      rec.port_acquired = b.outcome.port_acquired;
    }
    records.push_back(rec);
  }
  std::optional<EdgeId> missing =
      adversary_->choose_missing_edge(view, records);
  if (missing &&
      std::find(et_protected.begin(), et_protected.end(), *missing) !=
          et_protected.end()) {
    // ET veto: the forced agent must act in a round where its edge is
    // present; the adversary has exhausted its right to remove it.
    missing.reset();
    ++fairness_interventions_;
  }
  if (missing) {
    const bool ok = ring_.remove_edge(*missing);
    if (!ok)
      violations_.push_back("round " + std::to_string(round_) +
                            ": adversary attempted a second edge removal");
  }

  // --- Phase 5: movement -----------------------------------------------------
  struct PendingMove {
    AgentId agent;
    NodeId to;
    bool passive;
    GlobalDir dir;
  };
  std::vector<PendingMove> moves;
  for (AgentBody& b : bodies_) {
    if (!b.on_port || b.terminated) continue;
    const EdgeId e = ring_.edge_from(b.node, b.port_side);
    const bool was_active = active[static_cast<std::size_t>(b.id)];
    if (was_active) {
      // Only agents whose Compute ended positioned on the port traverse.
      if (b.outcome.attempted_move && b.outcome.port_acquired &&
          ring_.edge_present(e)) {
        moves.push_back(
            {b.id, ring_.neighbour(b.node, b.port_side), false, b.port_side});
      }
    } else {
      // Sleeping on a port.
      if (ring_.edge_present(e)) {
        if (model_ == Model::SSYNC_PT) {
          moves.push_back({b.id, ring_.neighbour(b.node, b.port_side), true,
                           b.port_side});
        } else if (model_ == Model::SSYNC_ET) {
          b.et_missed_present += 1;
        }
      }
    }
  }
  for (const PendingMove& mv : moves) {
    AgentBody& b = bodies_[mv.agent];
    ring_.release_port({b.node, b.port_side}, b.id);
    b.on_port = false;
    b.node = mv.to;
    mark_visited(mv.to);
    if (mv.passive) {
      b.passive_moves += 1;
      b.outcome.transported = true;
      b.outcome.transport_dir = b.orientation.to_local(mv.dir);
    } else {
      b.moves += 1;
      b.outcome.moved = true;
    }
  }
  // Agents that leave a port (even passively) owe no further ET debt.
  for (AgentBody& b : bodies_)
    if (!b.on_port) b.et_missed_present = 0;

  // --- Phase 6: verification & trace ----------------------------------------
  if (options_.verify) {
    for (const AgentBody& b : bodies_) {
      if (b.on_port) {
        const auto holder = ring_.port_holder({b.node, b.port_side});
        if (!holder || *holder != b.id) {
          violations_.push_back("round " + std::to_string(round_) +
                                ": agent " + std::to_string(b.id) +
                                " on a port it does not hold");
        }
      }
      if (b.node < 0 || b.node >= ring_.size()) {
        violations_.push_back("round " + std::to_string(round_) + ": agent " +
                              std::to_string(b.id) + " off the ring");
      }
    }
  }

  if (options_.record_trace) {
    RoundTrace rt;
    rt.round = round_;
    rt.missing = ring_.missing_edge();
    for (const AgentBody& b : bodies_) {
      AgentTrace at;
      at.id = b.id;
      at.node = b.node;
      at.on_port = b.on_port;
      at.port_side = b.port_side;
      at.active = active[static_cast<std::size_t>(b.id)];
      at.terminated = b.terminated;
      at.state = brains_[b.id]->state_name();
      for (const Computed& cmp : computed)
        if (cmp.agent == b.id) at.intent = cmp.intent;
      rt.agents.push_back(std::move(at));
    }
    trace_.push_back(std::move(rt));
  }

  return true;
}

RunResult Engine::run(const StopPolicy& stop) {
  RunResult result;
  std::string reason = "max_rounds";
  while (round_ < stop.max_rounds) {
    const bool progressed = step();
    if (!progressed) {
      reason = "all_terminated";
      break;
    }
    const int term = static_cast<int>(
        std::count_if(bodies_.begin(), bodies_.end(),
                      [](const AgentBody& b) { return b.terminated; }));
    if (stop.stop_when_all_terminated &&
        term == static_cast<int>(bodies_.size())) {
      reason = "all_terminated";
      break;
    }
    if (stop.stop_when_explored && explored()) {
      reason = "explored";
      break;
    }
    if (stop.stop_when_explored_and_one_terminated && explored() && term > 0) {
      reason = "explored_and_one_terminated";
      break;
    }
  }

  result.explored = explored();
  result.explored_round = explored_round_;
  result.rounds = round_;
  result.premature_termination = premature_termination_;
  result.fairness_interventions = fairness_interventions_;
  result.violations = violations_;
  result.stop_reason = reason;
  for (const AgentBody& b : bodies_) {
    AgentResult ar;
    ar.id = b.id;
    ar.terminated = b.terminated;
    ar.termination_round = b.termination_round;
    ar.moves = b.moves;
    ar.passive_moves = b.passive_moves;
    ar.final_node = b.node;
    ar.final_state = brains_[b.id]->state_name();
    result.agents.push_back(std::move(ar));
    result.active_moves += b.moves;
    result.passive_moves += b.passive_moves;
    if (b.terminated) result.terminated_agents += 1;
  }
  result.total_moves = result.active_moves + result.passive_moves;
  result.all_terminated =
      result.terminated_agents == static_cast<int>(bodies_.size());
  return result;
}

}  // namespace dring::sim
