#include "algo/landmark_core.hpp"

namespace dring::algo {

using agent::Intent;
using agent::Snapshot;
using agent::StepResult;

LandmarkCore::LandmarkCore(agent::Knowledge k, int initial_state)
    : ExploreMachine(k, initial_state) {}

void LandmarkCore::reset_roles() {
  fwd_dir_ = Dir::Left;
  roles_assigned_ = false;
  bounce_steps_ = 0;
  return_steps_ = 0;
  comm_step_ = 0;
  signaling_ = false;
}

StepResult LandmarkCore::decide_terminate(const Snapshot& snap) {
  if (snap.on_port) return StepResult::terminate();
  const bool partner_on_port =
      snap.others_on_left_port > 0 || snap.others_on_right_port > 0;
  if (!partner_on_port) return StepResult::terminate();
  // Leave the node proper first so the port-waiting partner observes the
  // departure; prefer the side whose port is free.
  signaling_ = true;
  const Dir d = snap.others_on_left_port > 0 ? Dir::Right : Dir::Left;
  return StepResult::move(d);
}

bool LandmarkCore::enter_shared(int state, const Snapshot& snap) {
  switch (state) {
    case lmk::kBounce:
      // First catch: I am B; F keeps my direction of travel, I reverse it.
      if (!roles_assigned_) {
        roles_assigned_ = true;
        fwd_dir_ = current_travel_dir();
      }
      return true;
    case lmk::kForward:
      // First catch: I am F, stuck on the port of my travel direction.
      if (!roles_assigned_) {
        roles_assigned_ = true;
        fwd_dir_ = snap.on_port ? snap.port_dir : current_travel_dir();
      }
      return true;
    case lmk::kReturn:
      // bounceSteps <- Esteps (the steps travelled during Bounce; entry
      // actions run before the per-Explore reset).
      bounce_steps_ = c_.Esteps;
      return true;
    case lmk::kBComm:
      return_steps_ = c_.Esteps;
      comm_step_ = 0;
      return true;
    case lmk::kFComm:
      comm_step_ = 0;
      return true;
    default:
      return false;
  }
}

std::optional<StepResult> LandmarkCore::run_shared(int state,
                                                   const Snapshot& snap) {
  // A terminate decision is pending: keep leaving the node proper (retrying
  // on mutual-exclusion failures), then stop.
  if (signaling_) return decide_terminate(snap);

  switch (state) {
    case lmk::kBounce: {
      // LExplore(right | meeting: Terminate;
      //                  Etime > 2 Esteps or Ntime > 0: Return;
      //                  catches: BComm)
      if (!just_entered()) {
        if (meeting(snap)) return decide_terminate(snap);
        if (c_.Etime > 2 * c_.Esteps || c_.Ntime > 0)
          return StepResult::go(lmk::kReturn);
        if (catches(snap, opposite(fwd_dir_)))
          return StepResult::go(lmk::kBComm);
      }
      return StepResult::move(opposite(fwd_dir_));
    }
    case lmk::kReturn: {
      // LExplore(left | Ntime > 3 size or caught: Terminate; catches: BComm)
      if (!just_entered()) {
        if (ntime_gt(3) || caught(snap)) return decide_terminate(snap);
        if (catches(snap, fwd_dir_)) return StepResult::go(lmk::kBComm);
      }
      return StepResult::move(fwd_dir_);
    }
    case lmk::kForward: {
      // LExplore(left | Ntime >= 7 size or meeting or catches: Terminate;
      //                 caught: FComm)
      if (!just_entered()) {
        if (ntime_ge(7) || meeting(snap) || catches(snap, fwd_dir_))
          return decide_terminate(snap);
        if (caught(snap)) return StepResult::go(lmk::kFComm);
      }
      return StepResult::move(fwd_dir_);
    }
    case lmk::kBComm: {
      if (comm_step_ == 0) {
        comm_step_ = 1;
        if (return_steps_ <= 2 * bounce_steps_ || n_known()) {
          // Both agents waited on the same edge, or the loop is closed:
          // the ring is explored. Signal termination by moving away.
          return decide_terminate(snap);
        }
        return StepResult::stay();  // stay one round in the node
      }
      // Second activation: F waited in the node iff it does not know n.
      if (snap.others_in_node > 0) return StepResult::go(lmk::kBounce);
      return decide_terminate(snap);  // F left or is on a port: terminate
    }
    case lmk::kFComm: {
      if (comm_step_ == 0) {
        comm_step_ = 1;
        if (n_known()) {
          // Signal to B that F knows n: F is on its port, i.e. already
          // observably out of the node proper — terminate there.
          return decide_terminate(snap);
        }
        return StepResult::act(Intent::step_off());  // port -> node proper
      }
      if (snap.others_in_node > 0) return StepResult::go(lmk::kForward);
      return decide_terminate(snap);  // B has left or is on the port
    }
    default:
      return std::nullopt;
  }
}

std::string LandmarkCore::name_of(int state) const {
  switch (state) {
    case lmk::kInit: return "Init";
    case lmk::kBounce: return "Bounce";
    case lmk::kReturn: return "Return";
    case lmk::kForward: return "Forward";
    case lmk::kBComm: return "BComm";
    case lmk::kFComm: return "FComm";
    case lmk::kHappy: return "Happy";
    case lmk::kFirstBlockL: return "FirstBlockL";
    case lmk::kAtLandmarkL: return "AtLandmarkL";
    case lmk::kReady: return "Ready";
    case lmk::kReverse: return "Reverse";
    case lmk::kInitL: return "InitL";
    case lmk::kFirstBlock: return "FirstBlock";
    case lmk::kAtLandmark: return "AtLandmark";
  }
  return "?";
}

}  // namespace dring::algo
