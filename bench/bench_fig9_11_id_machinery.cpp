// Reproduces Figures 9, 10 and 11 of the paper: the ID-assignment worked
// examples and the direction schedule of an agent with ID = 1.
//
//   Figure 9:  (k1,k2,k3)_a = (010, 010, 000) -> ID_a = 110000b  = 48
//              (k1,k2,k3)_b = (011, 100, 000) -> ID_b = 010100100b = 164
//   Figure 10: (k1,k2,k3)_a = (10, 01, 10)    -> ID_a = 101010b  = 42
//              (k1,k2,k3)_b = (110, 010, 000) -> ID_b = 100110000b = 304
//   Figure 11: ID = 1, S(ID) = 1010; phase 3 duplicates to 11001100
//              (rounds 8..15: right right left left right right left left).
#include <iostream>

#include "algo/id_encoding.hpp"
#include "util/bitstring.hpp"
#include "util/table.hpp"

int main() {
  using namespace dring;

  std::cout << "=== Figures 9 and 10: ID assignment worked examples ===\n\n";
  util::Table ids({"Figure", "Agent", "k1", "k2", "k3", "interleaved",
                   "ID (paper)", "ID (computed)", "match"});

  struct Case {
    const char* fig;
    const char* agent;
    std::uint64_t k1, k2, k3, expect;
  };
  const Case cases[] = {
      {"Fig. 9", "a", 2, 2, 0, 48},
      {"Fig. 9", "b", 3, 4, 0, 164},
      {"Fig. 10", "a", 2, 1, 2, 42},
      {"Fig. 10", "b", 6, 2, 0, 304},
  };
  bool all_ok = true;
  for (const Case& c : cases) {
    const std::uint64_t id = algo::compute_agent_id(c.k1, c.k2, c.k3);
    const bool ok = id == c.expect;
    all_ok = all_ok && ok;
    ids.add_row({c.fig, c.agent, util::to_binary(c.k1), util::to_binary(c.k2),
                 util::to_binary(c.k3),
                 util::interleave3(util::to_binary(c.k1),
                                   util::to_binary(c.k2),
                                   util::to_binary(c.k3)),
                 std::to_string(c.expect), std::to_string(id),
                 ok ? "yes" : "NO"});
  }
  ids.print(std::cout);

  std::cout << "\n=== Figure 11: direction schedule for ID = 1 ===\n\n";
  algo::IdSchedule sched(1);
  std::cout << "S(ID)  = " << sched.padded_s() << "   (\"10\" + b(1) + \"0\")\n"
            << "jbar   = " << sched.jbar() << "\n"
            << "phase 3 string = " << sched.phase_string(3)
            << "   (paper: 11001100)\n"
            << "phase 4 string = " << sched.phase_string(4) << "\n\n";

  util::Table dirs({"round", "phase", "direction (0=left, 1=right)"});
  for (std::int64_t r = 1; r <= 23; ++r) {
    dirs.add_row({std::to_string(r),
                  std::to_string(algo::phase_of_round(r)),
                  sched.direction(r) == Dir::Left ? "0 (left)" : "1 (right)"});
  }
  dirs.print(std::cout);

  const bool fig11_ok = sched.phase_string(3) == "11001100";
  std::cout << "\nFigure 11 phase-3 expansion "
            << (fig11_ok ? "matches" : "DOES NOT match") << " the paper.\n";
  return all_ok && fig11_ok ? 0 : 1;
}
