// Engine micro-benchmarks (google-benchmark): simulation throughput as a
// function of ring size, model and adversary. Not a paper experiment —
// this documents the substrate's own cost.
#include <benchmark/benchmark.h>

#include "adversary/basic_adversaries.hpp"
#include "core/runner.hpp"

namespace {

using namespace dring;

void BM_FsyncKnownN(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::KnownNNoChirality, n);
    cfg.engine.verify = false;
    cfg.stop.max_rounds = 10 * n;
    adversary::TargetedRandomAdversary adv(0.6, 1.0, 7);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    benchmark::DoNotOptimize(r.rounds);
    state.counters["rounds"] = static_cast<double>(r.rounds);
  }
}
BENCHMARK(BM_FsyncKnownN)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_SsyncPtBound(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    core::ExplorationConfig cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n);
    cfg.engine.verify = false;
    cfg.stop.max_rounds = 100LL * n * n;
    adversary::TargetedRandomAdversary adv(0.5, 0.6, 11);
    const sim::RunResult r = core::run_exploration(cfg, &adv);
    benchmark::DoNotOptimize(r.total_moves);
  }
}
BENCHMARK(BM_SsyncPtBound)->Arg(8)->Arg(16)->Arg(32);

void BM_RoundsPerSecondRaw(benchmark::State& state) {
  // Pure engine round cost: two walkers on a big static ring.
  const NodeId n = static_cast<NodeId>(state.range(0));
  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::UnconsciousExploration, n);
  cfg.engine.verify = false;
  sim::NullAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  std::int64_t rounds = 0;
  for (auto _ : state) {
    engine->step();
    ++rounds;
  }
  state.SetItemsProcessed(rounds);
}
BENCHMARK(BM_RoundsPerSecondRaw)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
