// The symmetry-breaking property of Section 3.2.3 (Theorem 7's proof):
// whenever BOTH agents complete the ID-collection phase (reach Ready and
// compute a direction schedule), their IDs are distinct — equal (k1,k2,k3)
// triples imply the agents bounced on the same edge and would have
// terminated in AtLandmark instead of reaching Ready.
//
// Plus remaining unit gap-fills for util.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "adversary/basic_adversaries.hpp"
#include "algo/landmark_no_chirality.hpp"
#include "core/runner.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dring {
namespace {

using algo::AlgorithmId;

class IdDistinctness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdDistinctness, BothReadyImpliesDistinctIds) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const NodeId n = static_cast<NodeId>(5 + rng.below(12));
  const bool mirrored = rng.chance(0.5);

  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::StartFromLandmarkNoChirality, n);
  cfg.orientations = {agent::kChiralOrientation,
                      mirrored ? agent::kMirroredOrientation
                               : agent::kChiralOrientation};
  cfg.stop.max_rounds = 100 * algo::no_chirality_time_bound(n);
  adversary::TargetedRandomAdversary adv(0.75, 1.0, seed * 7919);
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult r = engine->run(cfg.stop);

  ASSERT_TRUE(r.explored) << "n=" << n << " seed=" << seed;
  ASSERT_FALSE(r.premature_termination) << "n=" << n << " seed=" << seed;

  const auto* a =
      dynamic_cast<const algo::LandmarkNoChirality*>(&engine->brain(0));
  const auto* b =
      dynamic_cast<const algo::LandmarkNoChirality*>(&engine->brain(1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  if (a->schedule() && b->schedule()) {
    EXPECT_NE(a->schedule()->id(), b->schedule()->id())
        << "n=" << n << " seed=" << seed << "  k_a=(" << a->k1() << ","
        << a->k2() << "," << a->k3() << ")  k_b=(" << b->k1() << ","
        << b->k2() << "," << b->k3() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdDistinctness,
                         ::testing::Range<std::uint64_t>(1, 41));

// IDs stay below the paper's n^3 bound ("IDs are bounded from above by
// n^3, since each ki is at most n").
class IdMagnitude : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdMagnitude, BitLengthWithinPaperBound) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed ^ 0xabcdef);
  const NodeId n = static_cast<NodeId>(5 + rng.below(10));

  core::ExplorationConfig cfg =
      core::default_config(AlgorithmId::StartFromLandmarkNoChirality, n);
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.stop.max_rounds = 100 * algo::no_chirality_time_bound(n);
  adversary::TargetedRandomAdversary adv(0.7, 1.0, seed * 104729);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);

  for (AgentId i = 0; i < 2; ++i) {
    const auto* brain =
        dynamic_cast<const algo::LandmarkNoChirality*>(&engine->brain(i));
    ASSERT_NE(brain, nullptr);
    // k values are bounded by the time to the second wait, which the
    // paper bounds by O(n); allow the constant-factor slack of the round
    // accounting (each ki <= 4n covers every observed run).
    if (brain->schedule()) {
      EXPECT_LE(brain->k1(), 4 * n) << "seed=" << seed;
      EXPECT_LE(brain->k2(), 4 * n) << "seed=" << seed;
      EXPECT_LE(brain->k3(), 4 * n) << "seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdMagnitude,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- util gap-fills -----------------------------------------------------------

TEST(UtilGaps, RngUniform01InRange) {
  util::Rng rng(1);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(UtilGaps, TableSeparatorRendersRule) {
  util::Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  std::ostringstream ss;
  t.print(ss);
  // 5 rules total: top, under header, separator, bottom... plus the
  // header line and two data lines.
  const std::string out = ss.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '+') % 2, 0);
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
  EXPECT_NE(out.find("| 2 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 3u);  // two data rows + one separator entry
}

TEST(UtilGaps, RowsLongerThanHeaderExtendColumns) {
  util::Table t({"only"});
  t.add_row({"a", "b", "c"});
  std::ostringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("| a"), std::string::npos);
  EXPECT_NE(ss.str().find("| c"), std::string::npos);
}

}  // namespace
}  // namespace dring
