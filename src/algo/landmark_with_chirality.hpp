// Algorithm LandmarkWithChirality (paper, Figure 4 / Theorem 6).
//
// FSYNC, two anonymous agents, chirality, landmark, no knowledge of n.
// Explores and explicitly terminates in O(n) rounds.
//
//   Init:    LExplore(left | Ntime > 2 size: Terminate;
//                            catches: Bounce; caught: Forward)
//   + the shared Bounce/Return/Forward/BComm/FComm states (LandmarkCore).
#pragma once

#include "algo/landmark_core.hpp"

namespace dring::algo {

class LandmarkWithChirality final
    : public agent::CloneableMachine<LandmarkWithChirality, LandmarkCore> {
 public:
  LandmarkWithChirality();

  std::string algorithm_name() const override {
    return "LandmarkWithChirality";
  }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  void enter_state(int state, const agent::Snapshot& snap) override;
  Dir current_travel_dir() const override { return Dir::Left; }
};

}  // namespace dring::algo
