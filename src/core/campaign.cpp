#include "core/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <stdexcept>
#include <unordered_set>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/query.hpp"
#include "core/telemetry.hpp"
#include "core/version.hpp"

namespace dring::core {

// --- provenance ----------------------------------------------------------------

StoreProvenance current_provenance() {
  StoreProvenance provenance;
  provenance.engine = engine_version();
  provenance.build = build_flags_hash();
  provenance.schema = kStoreSchemaVersion;
  return provenance;
}

util::Json to_json(const StoreProvenance& provenance) {
  util::Json inner;
  inner.set("engine", provenance.engine);
  inner.set("build", provenance.build);
  inner.set("schema", provenance.schema);
  util::Json j;
  // The wrapper key "dring" doubles as the header marker AND keeps the
  // header line first under a plain byte sort ("dring" < "fp").
  j.set("dring", std::move(inner));
  return j;
}

StoreProvenance provenance_from_json(const util::Json& j) {
  const util::Json& inner = j.at("dring");
  StoreProvenance provenance;
  provenance.engine = inner.get_string("engine", "");
  provenance.build = inner.get_string("build", "");
  provenance.schema = inner.get_int("schema", 0);
  return provenance;
}

std::string provenance_line(const StoreProvenance& provenance) {
  return to_json(provenance).dump();
}

std::string describe(const StoreProvenance& provenance) {
  return provenance.engine + " (build " + provenance.build + ", schema v" +
         std::to_string(provenance.schema) + ")";
}

CampaignOutcome outcome_of(const sim::RunResult& r) {
  CampaignOutcome o;
  o.explored = r.explored;
  o.explored_round = r.explored_round;
  o.rounds = r.rounds;
  o.total_moves = r.total_moves;
  o.terminated_agents = r.terminated_agents;
  o.all_terminated = r.all_terminated;
  o.premature_termination = r.premature_termination;
  o.fairness_interventions = r.fairness_interventions;
  o.violations = static_cast<int>(r.violations.size());
  for (const sim::AgentResult& a : r.agents)
    o.last_termination = std::max(o.last_termination, a.termination_round);
  o.stop_reason = r.stop_reason;
  return o;
}

util::Json to_json(const CampaignRow& row) {
  util::Json result;
  result.set("explored", row.outcome.explored);
  result.set("explored_round",
             static_cast<long long>(row.outcome.explored_round));
  result.set("rounds", static_cast<long long>(row.outcome.rounds));
  result.set("total_moves", row.outcome.total_moves);
  result.set("terminated_agents",
             static_cast<long long>(row.outcome.terminated_agents));
  result.set("all_terminated", row.outcome.all_terminated);
  result.set("premature", row.outcome.premature_termination);
  result.set("fairness_interventions", row.outcome.fairness_interventions);
  result.set("violations", static_cast<long long>(row.outcome.violations));
  result.set("last_termination",
             static_cast<long long>(row.outcome.last_termination));
  result.set("stop_reason", row.outcome.stop_reason);
  if (!row.outcome.extra.empty()) {
    util::Json extra;
    for (const auto& [key, value] : row.outcome.extra) extra.set(key, value);
    result.set("extra", std::move(extra));
  }
  if (!row.outcome.extra_text.empty()) {
    util::Json extra_text;
    for (const auto& [key, value] : row.outcome.extra_text)
      extra_text.set(key, value);
    result.set("extra_text", std::move(extra_text));
  }

  util::Json j;
  j.set("fp", hex_u64(row.fingerprint));
  j.set("result", std::move(result));
  j.set("spec", to_json(row.spec));
  j.set("v", kStoreSchemaVersion);
  return j;
}

CampaignRow campaign_row_from_json(const util::Json& j) {
  const long long version = j.get_int("v", 1);
  if (version != kStoreSchemaVersion)
    throw std::invalid_argument(
        "row schema version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kStoreSchemaVersion) +
        " (re-run the campaign/artifact with this build to regenerate the "
        "store)");
  CampaignRow row;
  row.fingerprint = std::stoull(j.at("fp").as_string(), nullptr, 0);
  row.spec = scenario_spec_from_json(j.at("spec"));
  const util::Json& r = j.at("result");
  row.outcome.explored = r.get_bool("explored", false);
  row.outcome.explored_round = r.get_int("explored_round", -1);
  row.outcome.rounds = r.get_int("rounds", 0);
  row.outcome.total_moves = r.get_int("total_moves", 0);
  row.outcome.terminated_agents =
      static_cast<int>(r.get_int("terminated_agents", 0));
  row.outcome.all_terminated = r.get_bool("all_terminated", false);
  row.outcome.premature_termination = r.get_bool("premature", false);
  row.outcome.fairness_interventions = r.get_int("fairness_interventions", 0);
  row.outcome.violations = static_cast<int>(r.get_int("violations", 0));
  row.outcome.last_termination = r.get_int("last_termination", -1);
  row.outcome.stop_reason = r.get_string("stop_reason", "");
  if (r.has("extra"))
    for (const auto& [key, value] : r.at("extra").as_object())
      row.outcome.extra[key] = value.as_int();
  if (r.has("extra_text"))
    for (const auto& [key, value] : r.at("extra_text").as_object())
      row.outcome.extra_text[key] = value.as_string();
  return row;
}

std::string row_line(const CampaignRow& row) { return to_json(row).dump(); }

namespace {

/// The head of a line, for parse diagnostics — enough to recognize the row
/// (the fixed-width fingerprint sits in the first bytes) without dumping a
/// whole 500-byte row into the error.
std::string line_snippet(const std::string& line) {
  constexpr std::size_t kMax = 72;
  if (line.size() <= kMax) return "\"" + line + "\"";
  return "\"" + line.substr(0, kMax) + "\"...";
}

}  // namespace

ResultStore read_result_store(std::istream& in, StoreReadRecovery* recovery) {
  // Slurp the lines up front: the torn-tail tolerance below needs to know
  // whether a malformed line is the LAST content of the stream (a benign
  // interrupted write) or mid-file (corruption, always fatal).
  std::vector<std::string> lines;
  {
    std::string text;
    while (std::getline(in, text)) lines.push_back(std::move(text));
  }
  std::size_t last_content = 0;  // 1-based line number of the last non-empty line
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (!lines[i].empty()) last_content = i + 1;

  ResultStore store;
  store.provenance = current_provenance();  // empty streams read as fresh
  bool saw_header = false;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::size_t line_no = idx + 1;
    const std::string& line = lines[idx];
    if (line.empty()) continue;
    bool parsed = false;
    try {
      const util::Json j = util::Json::parse(line);
      parsed = true;
      if (j.has("dring")) {
        // The provenance header.  Exactly one, and it must come first —
        // a header in the middle means two stores were concatenated by
        // hand instead of merged.
        if (saw_header)
          throw std::invalid_argument(
              "second provenance header (stores must be combined with "
              "--merge, not concatenated)");
        if (!store.rows.empty())
          throw std::invalid_argument(
              "provenance header after rows (corrupt store)");
        store.provenance = provenance_from_json(j);
        if (store.provenance.schema != kStoreSchemaVersion)
          throw std::invalid_argument(
              "store provenance says schema v" +
              std::to_string(store.provenance.schema) +
              ", this build reads v" + std::to_string(kStoreSchemaVersion) +
              " (re-run the campaign/artifact with this build to "
              "regenerate the store)");
        saw_header = true;
        continue;
      }
      if (!saw_header) {
        // Rows before any header: a pre-v4 store.  Name the version the
        // rows claim so the fix is obvious.
        const long long version = j.get_int("v", 1);
        throw std::invalid_argument(
            "store schema version " + std::to_string(version) +
            " (no provenance header), this build reads version " +
            std::to_string(kStoreSchemaVersion) +
            " stores, which begin with a {\"dring\":...} provenance line "
            "(re-run the campaign/artifact with this build to regenerate "
            "the store)");
      }
      store.rows.push_back(campaign_row_from_json(j));
    } catch (const std::exception& e) {
      // An unparseable LAST line after a valid header is the signature of
      // an interrupted write (truncated copy, full disk, injected `trunc`
      // fault): in lenient mode drop that one row — its cell simply
      // re-runs on resume — instead of condemning the whole store.
      // Anything malformed earlier — or a line that parses but carries a
      // semantic problem (wrong schema, stray header) — is real
      // corruption and always throws.
      if (!parsed && recovery && saw_header && line_no == last_content) {
        recovery->dropped_partial = true;
        recovery->line_no = line_no;
        recovery->snippet = line_snippet(line);
        break;
      }
      throw std::invalid_argument("result store line " +
                                  std::to_string(line_no) + " " +
                                  line_snippet(line) + ": " + e.what());
    }
  }
  return store;
}

ResultStore read_result_store_file(const std::string& path,
                                   StoreReadRecovery* recovery) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open result store: " + path);
  try {
    return read_result_store(in, recovery);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void sort_canonical(std::vector<CampaignRow>& rows) {
  // Line order == fingerprint order (every line starts with the
  // fixed-width fingerprint hex); comparing the integer first avoids
  // re-serializing rows except for ties (duplicate fingerprints in a
  // hand-concatenated store), which fall back to the full line so the
  // order stays total.
  std::sort(rows.begin(), rows.end(),
            [](const CampaignRow& a, const CampaignRow& b) {
              if (a.fingerprint != b.fingerprint)
                return a.fingerprint < b.fingerprint;
              return row_line(a) < row_line(b);
            });
}

namespace {

/// fsync a path (file or directory).  Durability half of the crash-safe
/// write: the rename is atomic on its own, but without the fsync a power
/// loss can surface the new name with missing bytes.  Best-effort on
/// filesystems that reject fsync on directories.
void sync_path(const std::string& path, bool directory) {
#ifdef __unix__
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
  (void)directory;
#endif
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

}  // namespace

void write_result_store(const std::string& path, ResultStore store) {
  sort_canonical(store.rows);
  // Unique per process: two writers racing on one path (a speculative
  // re-dispatch of the same idempotent shard) each stage their own tmp
  // file, and whichever renames last wins with complete bytes.
#ifdef __unix__
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#else
  const std::string tmp = path + ".tmp";
#endif
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write result store: " + tmp);
    out << provenance_line(store.provenance) << '\n';
    for (const CampaignRow& row : store.rows) out << row_line(row) << '\n';
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed for result store: " + tmp);
    }
  }
  sync_path(tmp, /*directory=*/false);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot move " + tmp + " to " + path);
  }
  sync_path(parent_dir(path), /*directory=*/true);
}

void write_result_store(const std::string& path,
                        std::vector<CampaignRow> rows) {
  ResultStore store;
  store.provenance = current_provenance();
  store.rows = std::move(rows);
  write_result_store(path, std::move(store));
}

std::vector<CampaignRow> run_scenarios(
    const std::vector<ScenarioSpec>& specs, int threads,
    const std::function<void(std::size_t, std::size_t)>& on_task_done,
    int batch_width) {
  return run_scenarios_streaming(specs, threads, /*on_row=*/{},
                                 /*keep_rows=*/true, on_task_done,
                                 batch_width);
}

std::vector<CampaignRow> run_scenarios_streaming(
    const std::vector<ScenarioSpec>& specs, int threads,
    const std::function<void(const CampaignRow&)>& on_row, bool keep_rows,
    const std::function<void(std::size_t, std::size_t)>& on_task_done,
    int batch_width) {
  std::vector<ScenarioTask> tasks;
  tasks.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) tasks.push_back(to_task(spec));

  SweepOptions options;
  options.threads = threads;
  options.on_task_done = on_task_done;
  options.batch_width = batch_width;

  if (on_row || !keep_rows) {
    // Streaming: build each row at task completion, hand it to the hook,
    // and let the sweep discard the underlying RunResult immediately —
    // peak memory is O(workers), not O(cells).
    std::vector<CampaignRow> rows(keep_rows ? specs.size() : 0);
    options.discard_results = true;
    options.on_task_result = [&](std::size_t i, const SweepRun& run) {
      CampaignRow row;
      row.spec = specs[i];
      row.fingerprint = fingerprint(specs[i]);
      row.outcome = outcome_of(run.result);
      if (on_row) on_row(row);
      if (keep_rows) rows[i] = std::move(row);
    };
    run_sweep_runs(tasks, options);
    return rows;
  }

  const std::vector<sim::RunResult> results = run_sweep(tasks, options);
  std::vector<CampaignRow> rows(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    rows[i].spec = specs[i];
    rows[i].fingerprint = fingerprint(specs[i]);
    rows[i].outcome = outcome_of(results[i]);
  }
  return rows;
}

std::vector<ScenarioSpec> shard_filter(const std::vector<ScenarioSpec>& specs,
                                       int index, int count) {
  if (count < 1 || index < 0 || index >= count)
    throw std::invalid_argument("bad shard " + std::to_string(index) + "/" +
                                std::to_string(count));
  if (count == 1) return specs;
  std::vector<ScenarioSpec> mine;
  for (const ScenarioSpec& spec : specs)
    if (fingerprint(spec) % static_cast<std::uint64_t>(count) ==
        static_cast<std::uint64_t>(index))
      mine.push_back(spec);
  return mine;
}

StoreRunResult run_with_store(
    const std::vector<std::uint64_t>& fingerprints,
    const std::string& store_path, bool resume,
    const std::function<
        std::vector<CampaignRow>(const std::vector<std::size_t>&)>& execute) {
  const bool with_store = !store_path.empty();
  std::vector<CampaignRow> existing;
  bool had_store_file = false;
  StoreReadRecovery recovery;
  if (resume && with_store) {
    std::ifstream in(store_path);
    if (in) {
      had_store_file = true;
      const long long read_t0 =
          telemetry().enabled() ? telemetry_now_us() : 0;
      // Lenient about a torn trailing row: that cell is simply missing
      // from `existing`, so it re-runs below and the rewrite replaces the
      // fragment with a whole row.
      ResultStore prior = read_result_store(in, &recovery);
      if (telemetry().enabled())
        telemetry()
            .metrics()
            .histogram("campaign.store_read_us", telemetry_time_bounds())
            .observe(telemetry_now_us() - read_t0);
      if (!(prior.provenance == current_provenance()))
        throw std::runtime_error(
            "refusing to resume " + store_path + ": it was written by " +
            describe(prior.provenance) + ", this build is " +
            describe(current_provenance()) +
            " — resuming would blend rows from two engines; start a fresh "
            "store (or compare the two with `dring_report --compare`)");
      existing = std::move(prior.rows);
    }
  }

  StoreRunResult result;
  result.recovery = recovery;
  std::vector<std::size_t> todo;
  if (!existing.empty()) {
    std::unordered_set<std::uint64_t> done;
    for (const CampaignRow& row : existing) done.insert(row.fingerprint);
    for (std::size_t i = 0; i < fingerprints.size(); ++i) {
      if (done.count(fingerprints[i]))
        ++result.skipped;
      else
        todo.push_back(i);
    }
  } else {
    todo.resize(fingerprints.size());
    for (std::size_t i = 0; i < fingerprints.size(); ++i) todo[i] = i;
  }

  result.executed = todo.size();
  result.rows = execute(todo);

  // A fresh run replaces the store; a resume run rewrites it with the
  // union of existing and new rows.  Either way the file ends up in
  // canonical order, so equal row sets mean equal bytes — the property
  // the shard + merge workflow relies on.  When a resume executed
  // nothing against an existing file the store is left untouched; a
  // resume against a *missing* file always materializes the store (header
  // only for a zero-cell shard), so supervisors can treat "worker exited
  // 0 but no store" as a failure instead of a mystery.  A dropped torn
  // row also forces the rewrite even when its cell was the only work.
  const long long write_t0 = telemetry().enabled() ? telemetry_now_us() : 0;
  bool wrote = false;
  if (with_store && !result.rows.empty()) {
    std::vector<CampaignRow> out = existing;
    out.insert(out.end(), result.rows.begin(), result.rows.end());
    write_result_store(store_path, std::move(out));
    wrote = true;
  } else if (with_store &&
             (!resume || !had_store_file || recovery.dropped_partial)) {
    write_result_store(store_path, std::move(existing));
    wrote = true;
  }
  if (wrote && telemetry().enabled())
    telemetry()
        .metrics()
        .histogram("campaign.store_write_us", telemetry_time_bounds())
        .observe(telemetry_now_us() - write_t0);
  return result;
}

CampaignReport run_campaign(const CampaignSpec& campaign,
                            const CampaignOptions& options) {
  const std::vector<ScenarioSpec> all = expand(campaign);
  const std::vector<ScenarioSpec> mine =
      shard_filter(all, options.shard_index, options.shard_count);

  std::vector<std::uint64_t> fingerprints;
  fingerprints.reserve(mine.size());
  for (const ScenarioSpec& spec : mine) fingerprints.push_back(fingerprint(spec));

  // The heartbeat: rewrite the progress file after every completed cell
  // (and once up front, so a supervisor sees life before the first cell
  // lands).  The write is tiny and atomic enough for its one consumer —
  // dring_orchestrate only looks at the mtime and the "done total" pair.
  const auto beat = [&](std::size_t done, std::size_t total) {
    if (!options.progress_path.empty()) {
      std::ofstream out(options.progress_path, std::ios::trunc);
      out << done << ' ' << total << '\n';
    }
    if (options.on_progress) options.on_progress(done, total);
  };

  const bool telem = telemetry().enabled();
  Telemetry::Span run_span =
      telemetry().span("campaign.run",
                       {{"cells", std::to_string(mine.size())},
                        {"shard", std::to_string(options.shard_index)}});
  const long long run_t0 = telem ? telemetry_now_us() : 0;

  // Streaming: fold rows into the caller's aggregator as they complete.
  // With no store to write, the rows themselves are discarded right after
  // the fold — the run's memory stays O(workers) however large the grid.
  const bool keep_rows = !options.stream || !options.out_path.empty();
  std::function<void(const CampaignRow&)> on_row;
  if (options.stream)
    on_row = [&](const CampaignRow& row) { options.stream->add(row); };

  StoreRunResult result = run_with_store(
      fingerprints, options.out_path, options.resume,
      [&](const std::vector<std::size_t>& todo) {
        std::vector<ScenarioSpec> specs;
        specs.reserve(todo.size());
        for (const std::size_t i : todo) specs.push_back(mine[i]);
        if (!specs.empty()) beat(0, specs.size());
        return run_scenarios_streaming(specs, options.threads, on_row,
                                       keep_rows, beat, options.batch_width);
      });

  if (telem) {
    util::MetricsRegistry& m = telemetry().metrics();
    m.counter("campaign.cells_executed").add(
        static_cast<long long>(result.executed));
    m.counter("campaign.resume_hits").add(
        static_cast<long long>(result.skipped));
    const long long run_us = std::max(1LL, telemetry_now_us() - run_t0);
    m.gauge("campaign.cells_per_sec")
        .set(static_cast<double>(result.executed) * 1e6 /
             static_cast<double>(run_us));
  }

  CampaignReport report;
  report.total = all.size();
  report.sharded_out = all.size() - mine.size();
  report.skipped = result.skipped;
  report.executed = result.executed;
  report.rows = std::move(result.rows);
  report.recovery = result.recovery;
  return report;
}

StoreDiff diff_result_stores(const std::vector<CampaignRow>& a,
                             const std::vector<CampaignRow>& b) {
  // Last row wins per fingerprint (a resumed store never has duplicates,
  // but a hand-concatenated one might).
  std::map<std::uint64_t, CampaignRow> in_a, in_b;
  for (const CampaignRow& row : a) in_a[row.fingerprint] = row;
  for (const CampaignRow& row : b) in_b[row.fingerprint] = row;

  StoreDiff diff;
  for (const auto& [fp, row] : in_a) {
    const auto it = in_b.find(fp);
    if (it == in_b.end()) {
      diff.only_a.push_back(row);
    } else if (row_line(row) != row_line(it->second)) {
      // Any payload difference counts — outcome *or* spec (a spec change
      // under an unchanged fingerprint means the expansion semantics
      // moved underneath the store).
      diff.changed.emplace_back(row, it->second);
    }
  }
  for (const auto& [fp, row] : in_b)
    if (!in_a.count(fp)) diff.only_b.push_back(row);
  return diff;
}

StoreMerge merge_result_stores(std::vector<ResultStore> stores) {
  std::vector<std::vector<CampaignRow>> row_sets;
  row_sets.reserve(stores.size());
  for (ResultStore& store : stores) {
    if (!(store.provenance == stores.front().provenance))
      throw std::runtime_error(
          "refusing to merge stores with different provenance: " +
          describe(stores.front().provenance) + " vs " +
          describe(store.provenance) +
          " — cross-version rows must not blend into one store (compare "
          "them with `dring_report --compare` instead)");
    row_sets.push_back(std::move(store.rows));
  }
  StoreMerge merge = merge_result_stores(row_sets);
  if (!stores.empty()) merge.provenance = stores.front().provenance;
  return merge;
}

StoreMerge merge_result_stores(
    const std::vector<std::vector<CampaignRow>>& stores) {
  StoreMerge merge;
  merge.provenance = current_provenance();
  std::map<std::uint64_t, std::size_t> index;  ///< fp -> position in rows
  for (const std::vector<CampaignRow>& store : stores) {
    for (const CampaignRow& row : store) {
      const auto [it, inserted] =
          index.emplace(row.fingerprint, merge.rows.size());
      if (inserted) {
        merge.rows.push_back(row);
      } else if (row_line(merge.rows[it->second]) != row_line(row)) {
        merge.conflicts.emplace_back(merge.rows[it->second], row);
      }
      // identical duplicate: drop silently (merging a store with itself
      // is the identity)
    }
  }
  sort_canonical(merge.rows);
  return merge;
}

}  // namespace dring::core
