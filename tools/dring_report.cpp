// Campaign report generator: aggregate tables, feasibility frontiers and
// paired store comparisons over JSONL result stores (core/analysis.hpp).
//
//   dring_report --store results.jsonl [--store more.jsonl ...] \
//       [--group-by algorithm,n] [--metric explored_round] \
//       [--frontier AXIS] [--threshold 0.5] [--format md|csv|json]
//   dring_report --store base.jsonl --compare other.jsonl --metric rounds
//
// Stores are unioned by fingerprint (conflicting payloads are an error —
// shards of one campaign always merge cleanly).  Without --frontier the
// output is a group-by aggregate table: runs, successes, success rate with
// its Wilson 95% interval, and the metric's min/mean/median/p95/max plus
// per-seed dispersion.  With --frontier AXIS, each group's success rate is
// scanned along the numeric axis and every threshold crossing — the
// feasibility frontier — is reported.  With --compare, the --store rows
// (A) are joined per fingerprint against the --compare rows (B) and the
// metric deltas are summarized with an exact sign test — the
// significance-test workflow for cross-commit or cross-axis drift.
// Output is deterministic and byte-stable for a given row set, so reports
// can be committed next to their campaign spec and diffed across commits.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/archive.hpp"
#include "core/query.hpp"
#include "core/telemetry.hpp"
#include "util/cli.hpp"

namespace {

using namespace dring;

util::FlagTable flag_table() {
  util::FlagTable flags("dring_report",
                        "aggregate tables, frontiers and paired comparisons "
                        "over campaign result stores");
  flags.synopsis("dring_report --store results.jsonl [--store more.jsonl ...]"
                 " [--group-by algorithm,n] [--metric explored_round]"
                 " [--frontier AXIS] [--threshold 0.5] [--format md|csv|json]")
      .synopsis("dring_report --store base.jsonl --compare other.jsonl"
                " [--metric rounds] [--format md|csv|json]")
      .flag("store", "FILE", "result store to load (repeatable; unioned by "
                             "fingerprint)")
      .flag("group-by", "AXES", "comma-separated group keys (default "
                                "algorithm)")
      .flag("metric", "NAME", "explored_round (successful runs), rounds, "
                              "moves")
      .flag("frontier", "AXIS", "scan the numeric axis for success-rate "
                                "threshold crossings")
      .flag("threshold", "P", "frontier success-rate threshold (default 0.5)")
      .flag("compare", "FILE", "paired comparison: B-side store "
                               "(repeatable), joined per fingerprint")
      .flag("emit-archive", "FILE", "aggregate mode only: also write the "
                                    "per-cell-group aggregates as an archive "
                                    "fragment for dring_dashboard --collect "
                                    "--cells")
      .flag("format", "F", "md (default), csv or json")
      .flag("via-cache", "", "route aggregate/frontier through the "
                             "in-memory query cache (core/query.hpp) "
                             "instead of the batch path — byte-identical "
                             "output, CI-gated");
  core::add_log_flags(flags);
  flags.flag("help", "", "print this help")
      .note("axes: algorithm n agents adversary t_interval model max_rounds "
            "remove_prob target_prob activation_prob (aliases: k, family, "
            "T)");
  return flags;
}

std::vector<std::string> split_keys(const std::string& list) {
  std::vector<std::string> keys;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      if (!current.empty()) keys.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) keys.push_back(current);
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const util::FlagTable flags = flag_table();

  if (cli.get_bool("help", false)) {
    std::cout << flags.help_text();
    return 0;
  }
  if (const auto error = flags.unknown_flags(cli)) {
    std::cerr << *error << "\n";
    return 2;
  }
  core::set_log_level(core::log_level_from_cli(cli));

  std::vector<std::string> stores = cli.get_all("store");
  for (const std::string& p : cli.positional()) stores.push_back(p);
  if (stores.empty()) {
    std::cerr << flags.help_text();
    return 2;
  }

  try {
    const core::ResultStore store = core::load_result_stores(stores);
    const std::vector<core::CampaignRow>& rows = store.rows;
    const core::ReportFormat format =
        core::report_format_from_string(cli.get("format", "md"));

    std::vector<std::string> group_keys;
    for (const std::string& key : split_keys(cli.get("group-by", "algorithm")))
      group_keys.push_back(core::canonical_axis(key));

    if (cli.has("emit-archive") &&
        (cli.has("compare") || cli.has("frontier"))) {
      std::cerr << "dring_report: --emit-archive only applies to the "
                   "aggregate (group-by) mode\n";
      return 2;
    }
    const bool via_cache = cli.get_bool("via-cache", false);
    if (via_cache && cli.has("compare")) {
      std::cerr << "dring_report: --via-cache applies to the aggregate and "
                   "frontier modes\n";
      return 2;
    }
    // The cache indexes the same loaded rows; reports derived from it are
    // byte-identical to the batch path below (pinned by tests + CI).
    std::optional<core::ResultCache> cache;
    if (via_cache) cache.emplace(store);

    std::string report;
    if (cli.has("compare")) {
      const core::ResultStore other =
          core::load_result_stores(cli.get_all("compare"));
      const core::Metric metric =
          core::metric_from_string(cli.get("metric", "rounds"));
      core::PairedComparison cmp =
          core::paired_compare(rows, other.rows, metric);
      // Cross-version pairing is the provenance feature's whole point:
      // the report says which engines produced each side.
      cmp.provenance_a = core::describe(store.provenance);
      cmp.provenance_b = core::describe(other.provenance);
      report = core::render_paired_report(cmp, metric, format);
    } else if (cli.has("frontier")) {
      const std::string axis = core::canonical_axis(cli.get("frontier", ""));
      const double threshold = cli.get_double("threshold", 0.5);
      report = core::render_frontier_report(
          cache ? cache->frontier(group_keys, axis, threshold)
                : core::detect_frontier(rows, group_keys, axis, threshold),
          group_keys, axis, threshold, format);
    } else {
      const core::Metric metric =
          core::metric_from_string(cli.get("metric", "explored_round"));
      report = core::render_aggregate_report(
          cache ? cache->aggregate(group_keys, metric)
                : core::aggregate_rows(rows, group_keys, metric),
          group_keys, metric, format);
      if (cli.has("emit-archive")) {
        // The archive tracks success rates + rounds-to-explored per cell
        // group regardless of the report's display metric.
        const std::string path = cli.get("emit-archive", "");
        std::ofstream out(path, std::ios::trunc);
        if (!out) throw std::runtime_error("cannot write " + path);
        out << core::archive_cells_json(
                   core::archive_cells(rows, group_keys), group_keys)
                   .dump()
            << "\n";
        core::log_line(core::LogLevel::kInfo,
                       "wrote archive cells fragment " + path);
      }
    }
    std::cout << report;
  } catch (const std::exception& e) {
    std::cerr << "dring_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
