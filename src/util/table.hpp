// Minimal ASCII table renderer used by the benchmark harnesses to print
// paper-style tables (Tables 1-4) with an extra "measured" column.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dring::util {

/// Column-aligned ASCII table.  Rows are added as vectors of cells; the
/// renderer sizes every column to its widest cell.  Intended for terminal
/// output of benchmark results, not for machine parsing (benches also emit
/// CSV when asked).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows extend the column count.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line (rendered as dashes).
  void add_separator();

  /// Render with box-drawing ASCII (| and -).
  void print(std::ostream& os) const;

  /// Render as CSV (no escaping beyond quoting cells containing commas).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format helper: fixed precision double (e.g. fmt_double(3.14159, 2) ->
/// "3.14").
std::string fmt_double(double v, int precision);

/// Format helper: integral value with thousands separators
/// (fmt_count(1234567) -> "1,234,567").
std::string fmt_count(long long v);

}  // namespace dring::util
