// Dependency-free runtime metrics: counters, gauges and fixed-bucket
// histograms behind one registry.
//
// The telemetry layer (core/telemetry.hpp) snapshots the registry into a
// sidecar JSON file next to a result store.  Two design rules keep those
// snapshots diffable and machine-checkable:
//
//   * bucket layouts are fixed at creation (explicit integral upper
//     bounds, no adaptive resizing), so two runs that observed the same
//     values produce byte-identical histogram sections;
//   * everything countable is integral (counters, histogram bounds,
//     counts and sums), so no floating-point formatting or summation
//     order can wobble the bytes.  Gauges are the one double-valued
//     exception — they hold genuinely continuous readings (utilization,
//     cells/sec) that vary run to run anyway.
//
// Metrics are process-global by design (see core::telemetry()): the
// instrumented layers — engine, sweep pool, campaign store, orchestrator —
// sit several call frames apart, and threading a registry through every
// signature would tax exactly the hot paths telemetry must not slow down.
// All mutation is thread-safe; counters are lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dring::util {

/// Monotonically increasing integral count (events, cells, retries).
class Counter {
 public:
  void add(long long n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  long long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Last-write-wins continuous reading (utilization, cells/sec).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over integral values (typically microseconds).
/// Bucket i counts observations with value <= bounds[i] (and greater than
/// bounds[i-1]); one implicit overflow bucket catches everything above the
/// last bound.  Bounds are strictly increasing and immutable, so the
/// snapshot layout is a pure function of the declaration.
class Histogram {
 public:
  /// Throws std::invalid_argument when `bounds` is empty or not strictly
  /// increasing.
  explicit Histogram(std::vector<long long> bounds);

  void observe(long long value);

  /// Index of the bucket `value` lands in (bounds.size() = overflow).
  /// Pure bucket-boundary math, exposed for tests.
  std::size_t bucket_index(long long value) const;

  /// Doubling ladder {start, 2*start, 4*start, ...} of length `count` —
  /// the default time-bucket shape (microsecond scales span decades).
  /// Throws std::invalid_argument when start < 1 or count < 1.
  static std::vector<long long> exponential_bounds(long long start,
                                                   int count);

  struct Snapshot {
    std::vector<long long> bounds;  ///< upper bounds, as declared
    std::vector<long long> counts;  ///< bounds.size() + 1 (last = overflow)
    long long count = 0;            ///< total observations
    long long sum = 0;              ///< sum of observed values
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<long long> bounds_;
  std::vector<long long> counts_;
  long long count_ = 0;
  long long sum_ = 0;
};

/// Name -> metric registry.  Get-or-create: the first caller of a name
/// fixes its type (and, for histograms, its bucket layout); a name reused
/// with a different type throws.  References stay valid for the registry's
/// lifetime (metrics are never removed, only cleared wholesale by tests).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first creation; later callers get the existing
  /// histogram (layout is fixed by the first declaration).
  Histogram& histogram(const std::string& name,
                       const std::vector<long long>& bounds);

  /// Canonical snapshot of everything:
  ///   {"counters":{name:value},
  ///    "gauges":{name:value},
  ///    "histograms":{name:{"buckets":[{"count":..,"le":..},...,
  ///                        {"count":..,"le":"inf"}],"count":..,"sum":..}}}
  /// Keys sort (util::Json objects are maps), so equal metric states dump
  /// to equal bytes.
  Json snapshot_json() const;

  /// Drop every metric (tests isolate themselves with this).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dring::util
