// Evolving-graph view of a dynamic ring and the OFFLINE exploration
// optimum.
//
// The paper contrasts *live* exploration (agents unaware of future
// changes) with the *centralised / offline / post-mortem* setting of the
// prior literature (refs [26, 35, 37, 41]), where the full sequence of
// topological changes is known in advance and one computes an optimal
// exploration schedule.  This module provides that foil:
//
//   * EvolvingRing — a recorded edge schedule (footprint of an execution,
//     or any scripted schedule), i.e. the evolving-graph formalisation
//     G = G_1, G_2, ... of Section 1.1.2;
//   * offline_exploration_time — the minimum number of rounds a single
//     omniscient agent needs to visit every node, computed by dynamic
//     programming over (visited arc, position) states (on a ring the
//     visited set of one agent is always a contiguous arc containing the
//     start node);
//   * offline_two_agent_exploration_time — the same for two coordinated
//     agents (each agent's visited set is an arc; the union must cover).
//
// bench_price_of_liveness compares these optima against the live
// algorithms on identical schedules.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ring/types.hpp"

namespace dring::ring {

/// A dynamic ring "unrolled" in time: which edge is missing each round.
/// Round indexing is 1-based, matching the engine.
class EvolvingRing {
 public:
  EvolvingRing(NodeId n, std::vector<std::optional<EdgeId>> missing_per_round);

  /// Build from a round-indexed script over a fixed horizon.
  static EvolvingRing from_script(
      NodeId n, const std::function<std::optional<EdgeId>(Round)>& script,
      Round horizon);

  NodeId size() const { return n_; }
  Round horizon() const { return static_cast<Round>(missing_.size()); }

  /// Is edge `e` present in round `r` (1-based)? Rounds past the recorded
  /// horizon have every edge present.
  bool edge_present(EdgeId e, Round r) const;

  std::optional<EdgeId> missing_at(Round r) const;

 private:
  NodeId n_;
  std::vector<std::optional<EdgeId>> missing_;
};

/// Minimum rounds for ONE omniscient agent starting at `start` to visit
/// all nodes, moving at most one edge per round (waiting allowed), under
/// the recorded schedule. Returns -1 if not achievable within
/// `max_rounds`.
Round offline_exploration_time(const EvolvingRing& ring, NodeId start,
                               Round max_rounds);

/// Minimum rounds for TWO coordinated omniscient agents (starting at
/// `start_a`, `start_b`) to jointly visit all nodes. Port mutual exclusion
/// is ignored (an offline planner can trivially avoid conflicts except on
/// the same edge same direction, which an optimal plan never needs).
/// Returns -1 if not achievable within `max_rounds`.
Round offline_two_agent_exploration_time(const EvolvingRing& ring,
                                         NodeId start_a, NodeId start_b,
                                         Round max_rounds);

}  // namespace dring::ring
