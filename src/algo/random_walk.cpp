#include "algo/random_walk.hpp"

namespace dring::algo {

RandomWalk::RandomWalk(std::uint64_t seed, double momentum)
    : CloneableMachine(agent::Knowledge{}, 0),
      rng_(seed),
      momentum_(momentum) {}

agent::StepResult RandomWalk::run_state(int /*state*/,
                                        const agent::Snapshot& /*snap*/) {
  if (!rng_.chance(momentum_))
    dir_ = rng_.chance(0.5) ? Dir::Left : Dir::Right;
  return agent::StepResult::move(dir_);
}

}  // namespace dring::algo
