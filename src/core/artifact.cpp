// Framework half of the artifact layer: TraceSeries encoding, execution
// on the sweep pool with store semantics, derivation guards, and the
// registry.  The per-artifact builders (grids + renderers) live in
// artifact_possibility.cpp, artifact_impossibility.cpp,
// artifact_figures.cpp and artifact_studies.cpp.
#include "core/artifact.hpp"

#include <stdexcept>
#include <unordered_map>

namespace dring::core {

// --- TraceSeries ------------------------------------------------------------

std::string TraceSeries::encode() const {
  std::string out;
  for (const std::vector<std::string>& row : rows) {
    if (!out.empty()) out += '\n';
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += '|';
      out += row[i];
    }
  }
  return out;
}

TraceSeries TraceSeries::decode(const std::string& text) {
  TraceSeries series;
  if (text.empty()) return series;
  std::vector<std::string> row;
  std::string field;
  for (const char c : text) {
    if (c == '\n') {
      row.push_back(field);
      field.clear();
      series.rows.push_back(std::move(row));
      row.clear();
    } else if (c == '|') {
      row.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  row.push_back(field);
  series.rows.push_back(std::move(row));
  return series;
}

// --- execution helpers ------------------------------------------------------

namespace {

/// Run the given scenario subset on the pool.  Scenarios with `trace` set
/// record their per-round trace for the enrich hook; run_custom scenarios
/// execute their own engines.
std::vector<CampaignRow> execute(
    const Artifact& artifact, const std::vector<const ArtifactScenario*>& mine,
    int threads) {
  std::vector<ScenarioTask> tasks;
  tasks.reserve(mine.size());
  for (const ArtifactScenario* scenario : mine) {
    if (scenario->run_custom) {
      ScenarioTask task;
      task.run_custom = scenario->run_custom;
      tasks.push_back(std::move(task));
    } else {
      ScenarioTask task = to_task(scenario->spec);
      if (scenario->trace) task.cfg.engine.record_trace = true;
      tasks.push_back(std::move(task));
    }
  }
  SweepOptions options;
  options.threads = threads;

  const std::vector<SweepRun> runs = run_sweep_runs(tasks, options);
  std::vector<CampaignRow> rows(mine.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    rows[i].spec = mine[i]->spec;
    rows[i].fingerprint = fingerprint(mine[i]->spec);
    rows[i].outcome = outcome_of(runs[i].result);
    if (artifact.enrich) {
      ArtifactExtras extras = artifact.enrich(*mine[i], runs[i]);
      rows[i].outcome.extra = std::move(extras.numbers);
      rows[i].outcome.extra_text = std::move(extras.text);
    }
  }
  return rows;
}

/// Rows in scenario order for derivation; throws when any are missing.
std::vector<const CampaignRow*> ordered_rows(
    const Artifact& artifact, const std::vector<CampaignRow>& rows) {
  std::unordered_map<std::uint64_t, const CampaignRow*> by_fp;
  for (const CampaignRow& row : rows) by_fp.emplace(row.fingerprint, &row);

  std::vector<const CampaignRow*> ordered;
  ordered.reserve(artifact.scenarios.size());
  std::size_t missing = 0;
  for (const ArtifactScenario& scenario : artifact.scenarios) {
    const auto it = by_fp.find(fingerprint(scenario.spec));
    if (it == by_fp.end())
      ++missing;
    else
      ordered.push_back(it->second);
  }
  if (missing > 0)
    throw std::runtime_error(
        "artifact '" + artifact.name + "': store is missing " +
        std::to_string(missing) + " of " +
        std::to_string(artifact.scenarios.size()) +
        " scenario rows (run `dring_artifact --run " + artifact.name + "`)");
  return ordered;
}

}  // namespace

// --- registry ----------------------------------------------------------------

const std::vector<Artifact>& paper_artifacts() {
  static const std::vector<Artifact> kAll = {
      make_table1_artifact(100'000),
      make_table2_artifact({5, 6, 8, 11, 16, 24, 32}, 6),
      make_table3_artifact(50'000),
      make_table4_artifact({5, 6, 8, 11, 16, 24}, 6),
      make_fig2_worstcase_artifact({6, 8, 10, 13, 16, 24, 32, 48, 64}),
      make_fig_runs_artifact(),
      make_fig9_11_artifact(),
      make_lower_bounds_artifact(48),
      make_price_of_liveness_artifact({6, 8, 10}, {8, 10, 12}, 4),
      make_ablations_artifact(5),
      make_extension_many_agents_artifact(16, 5, 200'000),
  };
  return kAll;
}

const Artifact& artifact_by_name(const std::string& name) {
  for (const Artifact& artifact : paper_artifacts())
    if (artifact.name == name) return artifact;
  std::string valid;
  for (const Artifact& artifact : paper_artifacts())
    valid += (valid.empty() ? "" : ", ") + artifact.name;
  throw std::invalid_argument("unknown artifact '" + name +
                              "' (valid: " + valid + ")");
}

// --- execution ----------------------------------------------------------------

ArtifactRunReport run_artifact(const Artifact& artifact,
                               const ArtifactRunOptions& options) {
  if (options.shard_count < 1 || options.shard_index < 0 ||
      options.shard_index >= options.shard_count)
    throw std::invalid_argument(
        "bad shard " + std::to_string(options.shard_index) + "/" +
        std::to_string(options.shard_count));

  std::vector<const ArtifactScenario*> mine;
  std::vector<std::uint64_t> fingerprints;
  for (const ArtifactScenario& scenario : artifact.scenarios) {
    const std::uint64_t fp = fingerprint(scenario.spec);
    if (options.shard_count == 1 ||
        fp % static_cast<std::uint64_t>(options.shard_count) ==
            static_cast<std::uint64_t>(options.shard_index)) {
      mine.push_back(&scenario);
      fingerprints.push_back(fp);
    }
  }

  // The resume/store-rewrite contract is run_with_store — one home for
  // the semantics the shard + merge byte-stability pins ride on.
  StoreRunResult result = run_with_store(
      fingerprints, options.store_path, options.resume,
      [&](const std::vector<std::size_t>& todo) {
        std::vector<const ArtifactScenario*> selected;
        selected.reserve(todo.size());
        for (const std::size_t i : todo) selected.push_back(mine[i]);
        return execute(artifact, selected, options.threads);
      });

  ArtifactRunReport report;
  report.total = artifact.scenarios.size();
  report.sharded_out = artifact.scenarios.size() - mine.size();
  report.skipped = result.skipped;
  report.executed = result.rows.size();
  report.rows = std::move(result.rows);
  return report;
}

std::vector<CampaignRow> run_artifact_rows(const Artifact& artifact,
                                           int threads) {
  std::vector<const ArtifactScenario*> all;
  all.reserve(artifact.scenarios.size());
  for (const ArtifactScenario& scenario : artifact.scenarios)
    all.push_back(&scenario);
  return execute(artifact, all, threads);
}

std::string derive_report(const Artifact& artifact,
                          const std::vector<CampaignRow>& rows) {
  return artifact.render(artifact.scenarios, ordered_rows(artifact, rows));
}

int derive_status(const Artifact& artifact,
                  const std::vector<CampaignRow>& rows) {
  if (!artifact.status) return 0;
  return artifact.status(artifact.scenarios, ordered_rows(artifact, rows));
}

ArtifactDerivation derive(const Artifact& artifact,
                          const std::vector<CampaignRow>& rows) {
  const std::vector<const CampaignRow*> ordered = ordered_rows(artifact, rows);
  ArtifactDerivation derivation;
  derivation.report = artifact.render(artifact.scenarios, ordered);
  if (artifact.status)
    derivation.status = artifact.status(artifact.scenarios, ordered);
  return derivation;
}

long long stored_extra(const CampaignRow& row, const std::string& key,
                       long long fallback) {
  const auto it = row.outcome.extra.find(key);
  return it == row.outcome.extra.end() ? fallback : it->second;
}

}  // namespace dring::core
