// Quickstart: explore a dynamic ring with a landmark using Algorithm
// LandmarkWithChirality (Theorem 6) under randomized hostile dynamics,
// and print a per-round trace.
//
//   ./quickstart [--n=12] [--seed=42] [--p=0.6] [--trace=true]
#include <iostream>

#include "adversary/basic_adversaries.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dring;
  const util::Cli cli(argc, argv);
  const NodeId n = static_cast<NodeId>(cli.get_int("n", 12));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double p = cli.get_double("p", 0.6);
  const bool show_trace = cli.get_bool("trace", true);

  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::LandmarkWithChirality, n);
  cfg.engine.record_trace = show_trace;
  cfg.stop.max_rounds = 10'000 * n;

  adversary::TargetedRandomAdversary adversary(p, 1.0, seed);
  auto engine = core::make_engine(cfg, &adversary);
  const sim::RunResult result = engine->run(cfg.stop);

  if (show_trace) {
    std::cout << "round | missing | agents (node[/port] state)\n";
    for (const sim::RoundTrace& rt : engine->trace()) {
      std::cout << std::to_string(rt.round) << "\t| "
                << (rt.missing ? std::to_string(*rt.missing) : std::string("-"))
                << "\t| ";
      for (const sim::AgentTrace& at : rt.agents) {
        std::cout << "a" << at.id << "@" << at.node;
        if (at.on_port)
          std::cout << (at.port_side == GlobalDir::Ccw ? "/ccw" : "/cw");
        std::cout << " " << at.state << (at.terminated ? "(T)" : "") << "  ";
      }
      std::cout << "\n";
    }
  }

  std::cout << "\nring size:        " << n << " (landmark at node 0)\n"
            << "adversary:        " << adversary.name() << ", seed " << seed
            << "\nexplored:         " << (result.explored ? "yes" : "NO")
            << " (round " << result.explored_round << ")\n"
            << "rounds run:       " << result.rounds << "\n"
            << "moves:            " << result.total_moves << "\n"
            << "terminated:       " << result.terminated_agents << "/"
            << result.agents.size() << "\n"
            << "premature term.:  "
            << (result.premature_termination ? "YES (bug!)" : "no") << "\n";
  return result.ok() && result.explored ? 0 : 1;
}
