#include "sim/batch_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace dring::sim {

namespace {

// Packed agent::Feedback bits for fast lanes. Only these four fields can
// ever be set under FSYNC+null (no blocking, no passive transport), and a
// zero byte decodes to a default-constructed Feedback.
constexpr std::uint8_t kFbAttempted = 1u << 0;
constexpr std::uint8_t kFbDirRight = 1u << 1;
constexpr std::uint8_t kFbAcquired = 1u << 2;
constexpr std::uint8_t kFbMoved = 1u << 3;

constexpr std::uint8_t kIntentNone = 0;  ///< Stay / StepOff (no-op off-port)
constexpr std::uint8_t kIntentMove = 1;
constexpr std::uint8_t kIntentTerminate = 2;
constexpr std::uint8_t kIntentKindMask = 3;
constexpr std::uint8_t kIntentDirRight = 1u << 2;  ///< local Dir == Right

}  // namespace

BatchEngine::BatchEngine(int width) : width_(width) {
  if (width < 1) throw std::invalid_argument("BatchEngine width must be >= 1");
  kind_.assign(static_cast<std::size_t>(width), LaneKind::Empty);
  fast_.resize(static_cast<std::size_t>(width));
  fallback_.resize(static_cast<std::size_t>(width));
}

void BatchEngine::relayout(int k_cap, NodeId n_cap) {
  const std::size_t w = static_cast<std::size_t>(width_);
  const std::size_t ka = w * static_cast<std::size_t>(k_cap);
  const std::size_t na = w * static_cast<std::size_t>(n_cap);

  std::vector<NodeId> node(ka, kNoNode);
  std::vector<std::uint8_t> left_ccw(ka, 0), terminated(ka, 0), feedback(ka, 0);
  std::vector<Round> term_round(ka, -1);
  std::vector<long long> moves(ka, 0);
  std::vector<std::unique_ptr<agent::Brain>> brain(ka);
  std::vector<std::int32_t> in_node(na, 0);
  util::BitVec visited(na);

  for (int s = 0; s < width_; ++s) {
    if (kind_[static_cast<std::size_t>(s)] != LaneKind::Fast) continue;
    const FastLane& lane = fast_[static_cast<std::size_t>(s)];
    const std::size_t src_a = static_cast<std::size_t>(s) * k_cap_;
    const std::size_t dst_a = static_cast<std::size_t>(s) * k_cap;
    for (int j = 0; j < lane.k; ++j) {
      node[dst_a + j] = a_node_[src_a + j];
      left_ccw[dst_a + j] = a_left_ccw_[src_a + j];
      terminated[dst_a + j] = a_terminated_[src_a + j];
      feedback[dst_a + j] = a_feedback_[src_a + j];
      term_round[dst_a + j] = a_term_round_[src_a + j];
      moves[dst_a + j] = a_moves_[src_a + j];
      brain[dst_a + j] = std::move(a_brain_[src_a + j]);
    }
    const std::size_t src_n = static_cast<std::size_t>(s) * n_cap_;
    const std::size_t dst_n = static_cast<std::size_t>(s) * n_cap;
    for (NodeId v = 0; v < lane.n; ++v) {
      in_node[dst_n + v] = occ_in_node_[src_n + v];
      if (visited_.test(src_n + v)) visited.set(dst_n + v);
    }
  }

  a_node_ = std::move(node);
  a_left_ccw_ = std::move(left_ccw);
  a_terminated_ = std::move(terminated);
  a_feedback_ = std::move(feedback);
  a_term_round_ = std::move(term_round);
  a_moves_ = std::move(moves);
  a_brain_ = std::move(brain);
  occ_in_node_ = std::move(in_node);
  visited_ = std::move(visited);
  // Claims carry no information across rounds (every round resets the
  // slots it touched, and relayout happens between rounds) — no copy needed.
  port_claim_.assign(w * 2 * static_cast<std::size_t>(n_cap), 0);
  intent_.assign(static_cast<std::size_t>(k_cap), 0);
  claimed_.reserve(static_cast<std::size_t>(k_cap));
  k_cap_ = k_cap;
  n_cap_ = n_cap;
}

void BatchEngine::admit_fast(int slot, BatchLaneConfig config,
                             std::size_t tag) {
  // Same validation the scalar path performs in the DynamicRing ctor.
  if (config.n < 3) throw std::invalid_argument("DynamicRing requires n >= 3");
  if (config.landmark &&
      (*config.landmark < 0 || *config.landmark >= config.n))
    throw std::invalid_argument("landmark out of range");

  const int k = static_cast<int>(config.agents.size());
  if (k > k_cap_ || config.n > n_cap_)
    relayout(std::max(k, k_cap_), std::max(config.n, n_cap_));

  FastLane& lane = fast_[static_cast<std::size_t>(slot)];
  lane.tag = tag;
  lane.n = config.n;
  lane.landmark = config.landmark.value_or(kNoNode);
  lane.k = k;
  lane.live = k;
  lane.round = 0;
  lane.visited_count = 0;
  lane.explored_round = -1;
  lane.premature = false;
  lane.reason = "max_rounds";
  lane.stop = config.stop;
  lane.snapshots = 0;
  lane.adversary = std::move(config.adversary);

  const std::size_t abase = static_cast<std::size_t>(slot) * k_cap_;
  const std::size_t nbase = static_cast<std::size_t>(slot) * n_cap_;
  for (NodeId v = 0; v < n_cap_; ++v) occ_in_node_[nbase + v] = 0;
  visited_.reset_range(nbase, nbase + static_cast<std::size_t>(n_cap_));

  for (int j = 0; j < k; ++j) {
    const BatchLaneConfig::Agent& a = config.agents[static_cast<std::size_t>(j)];
    assert(a.start >= 0 && a.start < config.n);
    a_node_[abase + j] = a.start;
    a_left_ccw_[abase + j] = a.orientation.left == GlobalDir::Ccw ? 1 : 0;
    a_terminated_[abase + j] = 0;
    a_feedback_[abase + j] = 0;
    a_term_round_[abase + j] = -1;
    a_moves_[abase + j] = 0;
    a_brain_[abase + j] = std::move(config.agents[static_cast<std::size_t>(j)].brain);
    occ_in_node_[nbase + a.start] += 1;
    // Engine::add_agent marks each start visited at round 0.
    if (visited_.test_and_set(nbase + a.start)) {
      if (++lane.visited_count == lane.n) lane.explored_round = 0;
    }
  }
}

bool BatchEngine::admit(BatchLaneConfig config, std::size_t tag) {
  int slot = -1;
  for (int s = 0; s < width_; ++s) {
    if (kind_[static_cast<std::size_t>(s)] == LaneKind::Empty) {
      slot = s;
      break;
    }
  }
  if (slot < 0) return false;

  const bool fast = config.model == Model::FSYNC &&
                    (!config.adversary || config.adversary->is_null()) &&
                    !config.options.record_trace;
  if (fast) {
    admit_fast(slot, std::move(config), tag);
    kind_[static_cast<std::size_t>(slot)] = LaneKind::Fast;
    ++stats_.fast_lanes;
  } else {
    FallbackLane& lane = fallback_[static_cast<std::size_t>(slot)];
    lane.tag = tag;
    lane.stop = config.stop;
    lane.reason = "max_rounds";
    lane.adversary = std::move(config.adversary);
    lane.engine = std::make_unique<Engine>(config.n, config.landmark,
                                           config.model, config.options);
    lane.engine->use_scratch(&scratch_);
    for (BatchLaneConfig::Agent& a : config.agents)
      lane.engine->add_agent(a.start, a.orientation, std::move(a.brain));
    lane.engine->set_adversary(lane.adversary.get());
    kind_[static_cast<std::size_t>(slot)] = LaneKind::Fallback;
    ++stats_.fallback_lanes;
  }
  ++stats_.admitted;
  ++active_lanes_;
  return true;
}

void BatchEngine::run_fast_round(int slot, FastLane& lane) {
  ++lane.round;
  ++stats_.lane_rounds;
  const std::size_t abase = static_cast<std::size_t>(slot) * k_cap_;
  const std::size_t nbase = static_cast<std::size_t>(slot) * n_cap_;
  const int k = lane.k;

  // --- Pass A: Look & Compute against the pre-round state -------------------
  // The scalar engine counts one snapshot per active agent; under FSYNC
  // "active" is exactly the live set.
  lane.snapshots += lane.live;
  bool any_terminate = false;
  for (int j = 0; j < k; ++j) {
    if (a_terminated_[abase + j]) {
      intent_[static_cast<std::size_t>(j)] = kIntentNone;
      continue;
    }
    const NodeId node = a_node_[abase + j];
    agent::Snapshot snap;
    snap.is_landmark = node == lane.landmark;
    snap.others_in_node = occ_in_node_[nbase + node] - 1;
    agent::Feedback fb;
    const std::uint8_t f = a_feedback_[abase + j];
    fb.attempted_move = (f & kFbAttempted) != 0;
    fb.attempted_dir = (f & kFbDirRight) != 0 ? Dir::Right : Dir::Left;
    fb.port_acquired = (f & kFbAcquired) != 0;
    fb.moved = (f & kFbMoved) != 0;
    a_feedback_[abase + j] = 0;
    const agent::Intent intent = a_brain_[abase + j]->on_activate(snap, fb);
    switch (intent.kind) {
      case agent::Intent::Kind::Move:
        intent_[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
            kIntentMove | (intent.dir == Dir::Right ? kIntentDirRight : 0));
        break;
      case agent::Intent::Kind::Terminate:
        intent_[static_cast<std::size_t>(j)] = kIntentTerminate;
        any_terminate = true;
        break;
      default:
        intent_[static_cast<std::size_t>(j)] = kIntentNone;
        break;
    }
  }

  // --- Pass B1: terminations, before any movement (scalar phase 3a) ---------
  // The premature-termination oracle compares against the *pre-movement*
  // visited count, so this pass cannot fuse with the movement pass.
  if (any_terminate) {
    for (int j = 0; j < k; ++j) {
      if (intent_[static_cast<std::size_t>(j)] != kIntentTerminate) continue;
      a_terminated_[abase + j] = 1;
      a_term_round_[abase + j] = lane.round;
      --lane.live;
      if (lane.visited_count != lane.n) lane.premature = true;
    }
  }

  // --- Pass B2: port mutex + movement, fused ---------------------------------
  // First arrival per port wins (the null adversary never reorders), and
  // arrival order is id order under FSYNC. A claim keys on the claimant's
  // own pre-move node and claims are never released within a round, so
  // moving winners inline cannot change any later agent's claim.
  const std::size_t pbase = static_cast<std::size_t>(slot) * 2 * n_cap_;
  claimed_.clear();
  for (int j = 0; j < k; ++j) {
    const std::uint8_t intent = intent_[static_cast<std::size_t>(j)];
    if ((intent & kIntentKindMask) != kIntentMove) continue;
    const bool dir_right = (intent & kIntentDirRight) != 0;
    const bool ccw = dir_right ? a_left_ccw_[abase + j] == 0
                               : a_left_ccw_[abase + j] != 0;
    a_feedback_[abase + j] = kFbAttempted | (dir_right ? kFbDirRight : 0);
    const NodeId node = a_node_[abase + j];
    const std::size_t port =
        pbase + static_cast<std::size_t>(node) * 2 + (ccw ? 0 : 1);
    if (port_claim_[port] != 0) continue;  // lost to an earlier agent
    port_claim_[port] = 1;
    claimed_.push_back(port);
    a_feedback_[abase + j] |= kFbAcquired | kFbMoved;
    const NodeId to = ccw ? (node + 1 == lane.n ? 0 : node + 1)
                          : (node == 0 ? lane.n - 1 : node - 1);
    occ_in_node_[nbase + node] -= 1;
    occ_in_node_[nbase + to] += 1;
    a_node_[abase + j] = to;
    a_moves_[abase + j] += 1;
    if (visited_.test_and_set(nbase + static_cast<std::size_t>(to))) {
      if (++lane.visited_count == lane.n) lane.explored_round = lane.round;
    }
  }
  // Release this round's claims so the arena is all-zero between rounds.
  for (const std::size_t port : claimed_) port_claim_[port] = 0;
}

bool BatchEngine::advance_fast(int slot, FastLane& lane) {
  // Mirrors Engine::advance_run check for check.
  if (lane.round >= lane.stop.max_rounds) {
    lane.reason = "max_rounds";
    return false;
  }
  if (lane.live == 0) {
    lane.reason = "all_terminated";
    return false;
  }
  run_fast_round(slot, lane);
  const int term = lane.k - lane.live;
  if (lane.stop.stop_when_all_terminated && term == lane.k) {
    lane.reason = "all_terminated";
    return false;
  }
  const bool explored = lane.visited_count == lane.n;
  if (lane.stop.stop_when_explored && explored) {
    lane.reason = "explored";
    return false;
  }
  if (lane.stop.stop_when_explored_and_one_terminated && explored &&
      term > 0) {
    lane.reason = "explored_and_one_terminated";
    return false;
  }
  return true;
}

void BatchEngine::retire_fast(int slot, const RetireFn& on_retire) {
  FastLane& lane = fast_[static_cast<std::size_t>(slot)];
  const std::size_t abase = static_cast<std::size_t>(slot) * k_cap_;

  RunResult result;
  result.explored = lane.visited_count == lane.n;
  result.explored_round = lane.explored_round;
  result.rounds = lane.round;
  result.premature_termination = lane.premature;
  result.fairness_interventions = 0;  // impossible under FSYNC + null
  result.stop_reason = lane.reason;
  result.agents.reserve(static_cast<std::size_t>(lane.k));
  for (int j = 0; j < lane.k; ++j) {
    AgentResult ar;
    ar.id = j;
    ar.terminated = a_terminated_[abase + j] != 0;
    ar.termination_round = a_term_round_[abase + j];
    ar.moves = a_moves_[abase + j];
    ar.passive_moves = 0;  // no PT under FSYNC
    ar.final_node = a_node_[abase + j];
    ar.final_state = a_brain_[abase + j]->state_name();
    result.active_moves += ar.moves;
    if (ar.terminated) result.terminated_agents += 1;
    result.agents.push_back(std::move(ar));
  }
  result.total_moves = result.active_moves;
  result.all_terminated = result.terminated_agents == lane.k;
  if (lane.adversary) lane.adversary->report_metrics(result.adversary_metrics);

  LanePerf perf;
  perf.rounds = lane.round;
  perf.snapshots = lane.snapshots;

  const std::size_t tag = lane.tag;
  for (int j = 0; j < lane.k; ++j) a_brain_[abase + j].reset();
  lane.adversary.reset();
  kind_[static_cast<std::size_t>(slot)] = LaneKind::Empty;
  --active_lanes_;
  ++stats_.retired;
  on_retire(tag, std::move(result), perf);
}

void BatchEngine::retire_fallback(int slot, RunResult&& result,
                                  const RetireFn& on_retire) {
  FallbackLane& lane = fallback_[static_cast<std::size_t>(slot)];
  if (lane.adversary) lane.adversary->report_metrics(result.adversary_metrics);
  const Engine::PerfCounters& pc = lane.engine->perf_counters();
  LanePerf perf;
  perf.rounds = result.rounds;
  perf.snapshots = pc.snapshots;
  perf.probe_calls = pc.probe_calls;
  perf.probe_hits = pc.probe_hits;
  const std::size_t tag = lane.tag;
  lane.engine.reset();
  lane.adversary.reset();
  kind_[static_cast<std::size_t>(slot)] = LaneKind::Empty;
  --active_lanes_;
  ++stats_.retired;
  on_retire(tag, std::move(result), perf);
}

int BatchEngine::step_round(const RetireFn& on_retire) {
  int retired = 0;
  ++stats_.batch_rounds;
  for (int s = 0; s < width_; ++s) {
    switch (kind_[static_cast<std::size_t>(s)]) {
      case LaneKind::Empty:
        break;
      case LaneKind::Fast: {
        FastLane& lane = fast_[static_cast<std::size_t>(s)];
        if (!advance_fast(s, lane)) {
          retire_fast(s, on_retire);
          ++retired;
        }
        break;
      }
      case LaneKind::Fallback: {
        FallbackLane& lane = fallback_[static_cast<std::size_t>(s)];
        const Round before = lane.engine->round();
        const bool more = lane.engine->advance_run(lane.stop, lane.reason);
        stats_.lane_rounds += lane.engine->round() - before;
        if (!more) {
          retire_fallback(s, lane.engine->collect_result(lane.reason),
                          on_retire);
          ++retired;
        }
        break;
      }
    }
  }
  return retired;
}

}  // namespace dring::sim
