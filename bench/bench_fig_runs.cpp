// Reproduces the paper's execution figures as concrete simulated runs:
//
//   * Figure 12: both agents leave the landmark in opposite directions,
//     bounce on the same missing edge, return to the landmark
//     simultaneously and terminate from state AtLandmarkL.
//   * Figure 15: the PT bounce/reverse run — the chaser's left leg grows
//     by one node per Bounce-Reverse cycle (delta grows at each bounce).
//   * Figure 16: the Theorem 13 phase adversary — window shifts by one
//     node per phase while the chaser shuttles across it.
//
// The three executions are independent, so they run as a traced sweep on
// the worker pool (--threads=N; default all hardware threads) and the
// figure reconstruction walks the returned traces.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace dring;
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));

  std::vector<core::ScenarioTask> tasks(3);

  // --- Figure 12 task ---------------------------------------------------------
  const NodeId n12 = 7;  // odd: both agents reach the antipodal edge together
  {
    core::ScenarioTask& task = tasks[0];
    task.cfg = core::default_config(
        algo::AlgorithmId::StartFromLandmarkNoChirality, n12);
    task.cfg.orientations = {agent::kChiralOrientation,
                             agent::kMirroredOrientation};
    task.cfg.stop.max_rounds = 100;
    // Remove the antipodal edge exactly while both agents press on it.
    task.make_adversary = [n = n12]() -> std::unique_ptr<sim::Adversary> {
      return std::make_unique<adversary::ScriptedEdgeAdversary>(
          [n](Round r) -> std::optional<EdgeId> {
            return (r >= (n - 1) / 2 && r <= (n - 1) / 2 + 2)
                       ? std::optional<EdgeId>((n - 1) / 2)
                       : std::nullopt;
          });
    };
  }

  // --- Figure 15 task ---------------------------------------------------------
  const NodeId n15 = 14;
  {
    core::ScenarioTask& task = tasks[1];
    task.cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n15);
    task.cfg.start_nodes = {static_cast<NodeId>(n15 / 2 - 1), 0};
    task.cfg.orientations = {agent::kChiralOrientation,
                             agent::kChiralOrientation};
    task.cfg.engine.fairness_window = 1 << 20;
    task.cfg.stop.max_rounds = 40'000;
    task.cfg.stop.stop_when_explored_and_one_terminated = true;
    task.make_adversary = [] {
      return std::make_unique<adversary::SlidingWindowAdversary>(0, 1);
    };
  }

  // --- Figure 16 task ---------------------------------------------------------
  const NodeId n16 = 10;
  {
    core::ScenarioTask& task = tasks[2];
    task.cfg =
        core::default_config(algo::AlgorithmId::PTBoundWithChirality, n16);
    task.cfg.start_nodes = {static_cast<NodeId>(n16 / 2 - 1), 0};
    task.cfg.orientations = {agent::kChiralOrientation,
                             agent::kChiralOrientation};
    task.cfg.engine.fairness_window = 1 << 20;
    task.cfg.stop.max_rounds = 60;
    task.cfg.stop.stop_when_all_terminated = false;
    task.cfg.stop.stop_when_explored_and_one_terminated = false;
    task.make_adversary = [] {
      return std::make_unique<adversary::SlidingWindowAdversary>(0, 1);
    };
  }

  const std::vector<core::SweepRun> runs = core::run_sweep_traced(tasks, pool);

  // --- Figure 12 --------------------------------------------------------------
  std::cout << "=== Figure 12: termination from state AtLandmark ===\n\n";
  {
    const sim::RunResult& r = runs[0].result;
    util::Table t({"round", "missing", "agent a (node, state)",
                   "agent b (node, state)"});
    for (const sim::RoundTrace& rt : runs[0].trace) {
      t.add_row({std::to_string(rt.round),
                 rt.missing ? std::to_string(*rt.missing) : "-",
                 std::to_string(rt.agents[0].node) + " " +
                     rt.agents[0].state,
                 std::to_string(rt.agents[1].node) + " " +
                     rt.agents[1].state});
    }
    t.print(std::cout);
    std::cout << "explored=" << (r.explored ? "yes" : "NO")
              << ", both terminated="
              << (r.all_terminated ? "yes" : "NO")
              << ", premature=" << (r.premature_termination ? "YES" : "no")
              << "  (both agents bounced on edge " << (n12 - 1) / 2
              << " and met again at the landmark)\n";
  }

  // --- Figure 15 --------------------------------------------------------------
  std::cout << "\n=== Figure 15: delta grows at each Bounce-Reverse of the "
               "chaser ===\n\n";
  {
    // Reconstruct the chaser's legs from its state changes in the trace.
    util::Table t({"leg#", "chaser state", "leg length (moves)"});
    std::string cur_state;
    long long leg = 0;
    int leg_no = 0;
    NodeId prev_node = -1;
    bool first = true;
    for (const sim::RoundTrace& rt : runs[1].trace) {
      const sim::AgentTrace& ch = rt.agents[1];
      if (first) {
        cur_state = ch.state;
        prev_node = ch.node;
        first = false;
        continue;
      }
      if (ch.node != prev_node) ++leg;
      prev_node = ch.node;
      if (ch.state != cur_state || ch.terminated) {
        if (leg > 0)
          t.add_row({std::to_string(++leg_no), cur_state,
                     std::to_string(leg)});
        cur_state = ch.state;
        leg = 0;
        if (ch.terminated) break;
      }
    }
    t.print(std::cout);
    std::cout << "total moves=" << runs[1].result.total_moves
              << ", terminated=" << runs[1].result.terminated_agents << "/2"
              << "  (each left leg is one node longer than the previous "
                 "right leg, so the rightSteps >= leftSteps termination "
                 "check never fires early)\n";
  }

  // --- Figure 16 --------------------------------------------------------------
  std::cout << "\n=== Figure 16: the Theorem 13 window dance (first phases) "
               "===\n\n";
  {
    util::Table t({"round", "missing edge", "leader (node, on-port?)",
                   "chaser (node, state)"});
    // A window shift = one passive transport of the leader: its node
    // changed across a round in which it was not activated.
    long long shifts = 0;
    NodeId prev_leader_node = static_cast<NodeId>(n16 / 2 - 1);
    for (const sim::RoundTrace& rt : runs[2].trace) {
      if (rt.agents[0].node != prev_leader_node && !rt.agents[0].active)
        ++shifts;
      prev_leader_node = rt.agents[0].node;
      t.add_row(
          {std::to_string(rt.round),
           rt.missing ? std::to_string(*rt.missing) : "-",
           std::to_string(rt.agents[0].node) +
               (rt.agents[0].on_port ? " [port]" : ""),
           std::to_string(rt.agents[1].node) + " " + rt.agents[1].state});
    }
    t.print(std::cout);
    std::cout << "window shifts so far: " << shifts
              << "  (the leader is passively transported one node per "
                 "phase, exactly when the chaser is blocked at the other "
                 "window boundary)\n";
  }
  return 0;
}
