// Tests for the cross-version archive (core/archive.hpp): record JSON
// round-trips (with string/number leniency), canonical entry bytes, the
// append-only archive directory (duplicate-version refusal, --force,
// version-ordered reads), cell-group folding from campaign rows, perf /
// history extraction from a bench document, sparklines, drift detection,
// and the dashboard renderer's byte-stability and input-order invariance.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/archive.hpp"
#include "core/campaign.hpp"
#include "util/json.hpp"

namespace dring::core {
namespace {

namespace fs = std::filesystem;

/// A synthetic store row (no engine run): `explored` decides success.
CampaignRow fake_row(const std::string& algorithm, NodeId n,
                     std::uint64_t seed, bool explored, Round explored_round) {
  CampaignRow row;
  row.spec.algorithm = algorithm;
  row.spec.n = n;
  row.spec.adversary.family = "targeted-random";
  row.spec.adversary.t_interval = 2;
  row.spec.seed = seed;
  row.fingerprint = fingerprint(row.spec);
  row.outcome.explored = explored;
  row.outcome.explored_round = explored ? explored_round : -1;
  row.outcome.rounds = explored ? explored_round : 99;
  row.outcome.stop_reason = explored ? "explored" : "max_rounds";
  return row;
}

ArchiveRecord sample_record(const std::string& engine,
                            const std::string& date) {
  ArchiveRecord record;
  record.engine = engine;
  record.build = "0x00000000deadbeef";
  record.schema = 4;
  record.date = date;
  record.note = "sample";
  record.tests = 758;
  record.reports["table1"] = "0x0000000000000001";
  record.reports["fig2"] = "0x0000000000000002";
  ArchiveCellGroup cell;
  cell.key = "algorithm=A n=6";
  cell.runs = 40;
  cell.successes = 36;
  cell.rate_lo = 0.7654;
  cell.rate_hi = 0.9612;
  cell.mean_rounds = 17.25;
  record.cells.push_back(cell);
  record.perf["BM_Raw/64"] = {12345.67, 891011.1};
  ArchiveBenchEra era;
  era.engine = "dring-1.0.0";
  era.date = "2026-01-01";
  era.marks["BM_Raw/64"] = {23456.78, 456789.0};
  record.bench_history.push_back(era);
  return record;
}

/// A scratch directory unique to the calling test, recreated empty.
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "archive_test_" + name;
  fs::remove_all(dir);
  return dir;
}

// --- record (de)serialization -----------------------------------------------

TEST(ArchiveRecordJson, RoundTripsEveryField) {
  const ArchiveRecord record = sample_record("dring-1.5.0", "2026-08-08");
  const ArchiveRecord back = archive_record_from_json(to_json(record));
  EXPECT_EQ(back, record);
}

TEST(ArchiveRecordJson, CanonicalBytesAreStableUnderReserialization) {
  const ArchiveRecord record = sample_record("dring-1.5.0", "2026-08-08");
  const std::string bytes = archive_entry_bytes(record);
  // Parse -> struct -> dump must reproduce the bytes exactly: the archive
  // file format is canonical, not merely equivalent.
  const ArchiveRecord back =
      archive_record_from_json(util::Json::parse(bytes));
  EXPECT_EQ(archive_entry_bytes(back), bytes);
  // Non-integral numbers are serialized as fixed-format strings so the
  // dump never depends on double formatting.
  EXPECT_NE(bytes.find("\"rate_lo\":\"0.7654\""), std::string::npos) << bytes;
  EXPECT_NE(bytes.find("\"real_time_ns\":\"12345.67\""), std::string::npos);
}

TEST(ArchiveRecordJson, AcceptsPlainNumbersWhereStringsAreCanonical) {
  // Hand-written or third-party records may use plain JSON numbers.
  const util::Json j = util::Json::parse(
      R"({"archive":1,"engine":"dring-1.4.0","build":"0x01","schema":4,)"
      R"("date":"2026-07-01","cells":[{"key":"algorithm=A","runs":10,)"
      R"("ok":5,"rate_lo":0.25,"rate_hi":0.75,"mean_rounds":12.5}],)"
      R"("perf":{"BM_X":{"real_time_ns":100.5,"items_per_second":7}}})");
  const ArchiveRecord record = archive_record_from_json(j);
  ASSERT_EQ(record.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(record.cells[0].rate_lo, 0.25);
  EXPECT_DOUBLE_EQ(record.cells[0].mean_rounds, 12.5);
  EXPECT_DOUBLE_EQ(record.perf.at("BM_X").real_time_ns, 100.5);
}

TEST(ArchiveRecordJson, RejectsUnknownSchemaAndBadNumericStrings) {
  util::Json wrong = to_json(sample_record("dring-1.5.0", "2026-08-08"));
  wrong.set("archive", kArchiveSchemaVersion + 1);
  EXPECT_THROW(archive_record_from_json(wrong), std::invalid_argument);
  const util::Json bad = util::Json::parse(
      R"({"archive":1,"engine":"e","build":"b","schema":4,"date":"d",)"
      R"("perf":{"BM_X":{"real_time_ns":"12x"}}})");
  EXPECT_THROW(archive_record_from_json(bad), std::invalid_argument);
}

// --- building record pieces --------------------------------------------------

TEST(ArchiveCells, FoldsRowsIntoSortedSelfDescribingGroups) {
  std::vector<CampaignRow> rows;
  // Cell A/6: 3 successes of 4, explored rounds {10, 20, 30}.
  rows.push_back(fake_row("A", 6, 1, true, 10));
  rows.push_back(fake_row("A", 6, 2, true, 20));
  rows.push_back(fake_row("A", 6, 3, true, 30));
  rows.push_back(fake_row("A", 6, 4, false, 0));
  // Cell B/6: all failures — no mean_rounds.
  rows.push_back(fake_row("B", 6, 1, false, 0));
  rows.push_back(fake_row("B", 6, 2, false, 0));

  const std::vector<ArchiveCellGroup> cells =
      archive_cells(rows, {"algorithm", "n"});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key, "algorithm=A n=6");
  EXPECT_EQ(cells[0].runs, 4);
  EXPECT_EQ(cells[0].successes, 3);
  EXPECT_DOUBLE_EQ(cells[0].rate(), 0.75);
  EXPECT_DOUBLE_EQ(cells[0].mean_rounds, 20.0);
  EXPECT_GT(cells[0].rate_lo, 0.0);
  EXPECT_LT(cells[0].rate_lo, 0.75);
  EXPECT_GT(cells[0].rate_hi, 0.75);
  EXPECT_EQ(cells[1].key, "algorithm=B n=6");
  EXPECT_EQ(cells[1].successes, 0);
  EXPECT_DOUBLE_EQ(cells[1].mean_rounds, -1.0);

  // The fragment shape dring_report --emit-archive writes reads back.
  // Rates are canonical at 4 decimals, so the invariant is that a second
  // serialization round is a fixed point, not bit-exact doubles.
  const util::Json fragment = archive_cells_json(cells, {"algorithm", "n"});
  const std::vector<ArchiveCellGroup> back = archive_cells_from_json(fragment);
  EXPECT_EQ(back[0].runs, cells[0].runs);
  EXPECT_EQ(back[0].successes, cells[0].successes);
  EXPECT_NEAR(back[0].rate_lo, cells[0].rate_lo, 5e-5);
  EXPECT_EQ(archive_cells_json(back, {"algorithm", "n"}).dump(),
            fragment.dump());
}

TEST(ArchiveBench, ExtractsSectionsAndHistory) {
  const util::Json bench = util::Json::parse(
      R"({"baseline":{"BM_X":{"real_time_ns":200.0,"items_per_second":5.0}},)"
      R"("current":{"BM_X":{"real_time_ns":100.0,"items_per_second":10.0}},)"
      R"("history":[{"engine":"dring-1.2.0","date":"2026-03-01",)"
      R"("marks":{"BM_X":{"real_time_ns":150.0,"items_per_second":7.5}}}]})");
  EXPECT_DOUBLE_EQ(perf_marks_from_bench(bench, "current")
                       .at("BM_X").real_time_ns, 100.0);
  EXPECT_DOUBLE_EQ(perf_marks_from_bench(bench, "baseline")
                       .at("BM_X").real_time_ns, 200.0);
  EXPECT_THROW(perf_marks_from_bench(bench, "nope"), std::invalid_argument);
  const std::vector<ArchiveBenchEra> history =
      bench_history_from_bench(bench);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].engine, "dring-1.2.0");
  EXPECT_DOUBLE_EQ(history[0].marks.at("BM_X").real_time_ns, 150.0);
  // The --emit-archive perf fragment feeds back through the same readers.
  const util::Json fragment =
      archive_perf_json(perf_marks_from_bench(bench, "current"), history);
  EXPECT_DOUBLE_EQ(perf_marks_from_bench(fragment, "perf")
                       .at("BM_X").real_time_ns, 100.0);
  EXPECT_EQ(bench_history_from_bench(fragment).size(), 0u)
      << "fragment history lives under bench_history, not history";
}

TEST(ArchiveDigest, FnvDigestMatchesKnownVectorAndSeparates) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(content_digest(""), "0xcbf29ce484222325");
  EXPECT_NE(content_digest("a"), content_digest("b"));
}

// --- the archive directory ---------------------------------------------------

TEST(ArchiveDir, VersionOrderingIsNumericComponentWise) {
  EXPECT_TRUE(engine_version_less("dring-1.2.0", "dring-1.10.0"));
  EXPECT_FALSE(engine_version_less("dring-1.10.0", "dring-1.2.0"));
  EXPECT_TRUE(engine_version_less("dring-1.9.9", "dring-2.0.0"));
  EXPECT_FALSE(engine_version_less("dring-1.5.0", "dring-1.5.0"));
  // Parsed versions sort before non-conforming names.
  EXPECT_TRUE(engine_version_less("dring-1.0.0", "prototype"));
  EXPECT_FALSE(engine_version_less("prototype", "dring-1.0.0"));
}

TEST(ArchiveDir, AbsentDirectoryReadsEmpty) {
  EXPECT_TRUE(read_archive_dir(scratch_dir("absent")).empty());
}

TEST(ArchiveDir, AppendRefusesDuplicateVersionUnlessForced) {
  const std::string dir = scratch_dir("append");
  const ArchiveRecord v1 = sample_record("dring-1.4.0", "2026-06-01");
  const std::string path = append_archive_record(dir, v1, false);
  EXPECT_TRUE(fs::exists(path));

  // Same version again: refused, file untouched.
  ArchiveRecord dup = v1;
  dup.note = "overwrite attempt";
  EXPECT_THROW(append_archive_record(dir, dup, false), std::runtime_error);
  {
    std::vector<ArchiveRecord> records = read_archive_dir(dir);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].note, "sample");
  }

  // --force rewrites deliberately.
  append_archive_record(dir, dup, true);
  EXPECT_EQ(read_archive_dir(dir).at(0).note, "overwrite attempt");

  // A second version appends alongside; reads come back version-ordered
  // even though "dring-1.10.0" sorts before "dring-1.4.0" as a filename.
  append_archive_record(dir, sample_record("dring-1.10.0", "2026-07-01"),
                        false);
  const std::vector<ArchiveRecord> records = read_archive_dir(dir);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].engine, "dring-1.4.0");
  EXPECT_EQ(records[1].engine, "dring-1.10.0");
}

TEST(ArchiveDir, MalformedEntryNamesTheFile) {
  const std::string dir = scratch_dir("malformed");
  fs::create_directories(dir);
  std::ofstream(dir + "/broken.json") << "{\"archive\":999}\n";
  try {
    read_archive_dir(dir);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("broken.json"), std::string::npos);
  }
}

// --- the dashboard -----------------------------------------------------------

TEST(ArchiveSparkline, ScalesAndMarksMissing) {
  EXPECT_EQ(sparkline({0, 1}), "▁█");
  EXPECT_EQ(sparkline({5, 5, 5}), "▄▄▄");  // all-equal: mid-scale
  const double nan = std::nan("");
  EXPECT_EQ(sparkline({0, nan, 1}), "▁·█");
  // Absolute scale: 0.5 sits mid-scale even though it is the series max.
  EXPECT_EQ(sparkline({0.5}, 0, 1), "▅");
}

TEST(ArchiveDrift, DetectsDigestChangesBetweenConsecutiveVersions) {
  ArchiveRecord v1 = sample_record("dring-1.4.0", "2026-06-01");
  ArchiveRecord v2 = sample_record("dring-1.5.0", "2026-08-08");
  v2.reports["table1"] = "0x00000000000000ff";  // perturbed
  v2.reports["fresh"] = "0x0000000000000003";   // new report: not drift
  const std::vector<ArchiveDrift> drift = detect_drift({v1, v2});
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_EQ(drift[0].report, "table1");
  EXPECT_EQ(drift[0].from_engine, "dring-1.4.0");
  EXPECT_EQ(drift[0].to_engine, "dring-1.5.0");
  EXPECT_EQ(drift[0].digest_before, "0x0000000000000001");
  EXPECT_EQ(drift[0].digest_after, "0x00000000000000ff");
  EXPECT_TRUE(detect_drift({v1}).empty());
}

TEST(ArchiveDashboard, ByteStableAndInputOrderInvariant) {
  ArchiveRecord v1 = sample_record("dring-1.4.0", "2026-06-01");
  ArchiveRecord v2 = sample_record("dring-1.5.0", "2026-08-08");
  v2.perf["BM_Raw/64"] = {11111.11, 991011.1};
  v2.reports["table1"] = "0x00000000000000ff";

  const std::string page = render_dashboard({v1, v2},
                                            ReportFormat::Markdown);
  // Two derivations, the second from permuted input order: identical.
  EXPECT_EQ(render_dashboard({v2, v1}, ReportFormat::Markdown), page);
  EXPECT_EQ(render_dashboard({v2, v1}, ReportFormat::Json),
            render_dashboard({v1, v2}, ReportFormat::Json));

  // The page carries each section and the perturbed digest as drift.
  EXPECT_NE(page.find("## versions"), std::string::npos);
  EXPECT_NE(page.find("## engine perf trend"), std::string::npos);
  EXPECT_NE(page.find("## success-rate trend"), std::string::npos);
  EXPECT_NE(page.find("## rounds-to-explored trend"), std::string::npos);
  EXPECT_NE(page.find("## artifact drift"), std::string::npos);
  EXPECT_NE(page.find("| table1 | dring-1.4.0 | dring-1.5.0 |"),
            std::string::npos)
      << page;
  // Perf moved 12345.67 -> 11111.11 ns: a negative (improving) delta.
  EXPECT_NE(page.find("-10.0%"), std::string::npos) << page;
}

TEST(ArchiveDashboard, FlagsCostRegressionsPastTolerance) {
  ArchiveRecord v1 = sample_record("dring-1.4.0", "2026-06-01");
  ArchiveRecord v2 = sample_record("dring-1.5.0", "2026-08-08");
  v2.perf["BM_Raw/64"] = {12345.67 * 1.25, 891011.1};  // +25% slower
  v2.cells[0].successes = 30;                          // rate 0.9 -> 0.75
  const std::string page = render_dashboard({v1, v2},
                                            ReportFormat::Markdown);
  EXPECT_NE(page.find("+25.0% REGRESSED"), std::string::npos) << page;
  EXPECT_NE(page.find("-15.00pp REGRESSED"), std::string::npos) << page;
}

TEST(ArchiveDashboard, CsvIsOneFlatPlotReadyTable) {
  const std::string csv = render_dashboard(
      {sample_record("dring-1.5.0", "2026-08-08")}, ReportFormat::Csv);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "section,series,version,value");
  EXPECT_NE(csv.find("perf_ns,BM_Raw/64,dring-1.5.0,12345.67"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find("rate,algorithm=A n=6,dring-1.5.0,0.9000"),
            std::string::npos);
  EXPECT_NE(csv.find("rounds,algorithm=A n=6,dring-1.5.0,17.25"),
            std::string::npos);
  EXPECT_NE(csv.find("tests,tier-1,dring-1.5.0,758"), std::string::npos);
}

TEST(ArchiveDashboard, JsonCarriesRecordsAndDrift) {
  ArchiveRecord v1 = sample_record("dring-1.4.0", "2026-06-01");
  ArchiveRecord v2 = sample_record("dring-1.5.0", "2026-08-08");
  v2.reports["table1"] = "0x00000000000000ff";
  const util::Json doc = util::Json::parse(
      render_dashboard({v1, v2}, ReportFormat::Json));
  EXPECT_EQ(doc.get_int("archive", -1), kArchiveSchemaVersion);
  ASSERT_EQ(doc.at("records").as_array().size(), 2u);
  EXPECT_EQ(doc.at("records").as_array()[0].at("engine").as_string(),
            "dring-1.4.0");
  ASSERT_EQ(doc.at("drift").as_array().size(), 1u);
  EXPECT_EQ(doc.at("drift").as_array()[0].at("report").as_string(),
            "table1");
}

}  // namespace
}  // namespace dring::core
