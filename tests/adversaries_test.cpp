// Unit tests for the adversary library: each strategy does exactly what
// its proof requires (blocking, meeting prevention, NS starvation, head-on
// pinning, segment sealing, scripted schedules) and stays deterministic.
#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/composed.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"

namespace dring::adversary {
namespace {

using algo::AlgorithmId;
using core::default_config;
using core::ExplorationConfig;

TEST(FixedEdge, KeepsEdgeOutForever) {
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 6);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 50;
  cfg.stop.stop_when_explored = false;
  FixedEdgeAdversary adv(3);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  for (const sim::RoundTrace& rt : engine->trace())
    EXPECT_EQ(rt.missing, std::optional<EdgeId>(3));
}

TEST(RandomAdversary, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    ExplorationConfig cfg =
        default_config(AlgorithmId::PTBoundWithChirality, 9);
    cfg.stop.max_rounds = 100'000;
    RandomAdversary adv(0.5, 0.6, seed);
    return core::run_exploration(cfg, &adv);
  };
  const sim::RunResult a = run(7);
  const sim::RunResult b = run(7);
  const sim::RunResult c = run(8);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.explored_round, b.explored_round);
  // A different seed gives a different execution (statistically certain).
  EXPECT_TRUE(a.rounds != c.rounds || a.total_moves != c.total_moves);
}

TEST(ScriptedEdge, FollowsScript) {
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 6);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 6;
  cfg.stop.stop_when_explored = false;
  ScriptedEdgeAdversary adv([](Round r) -> std::optional<EdgeId> {
    if (r <= 2) return 1;
    if (r == 4) return 5;
    return std::nullopt;
  });
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  const auto& tr = engine->trace();
  ASSERT_EQ(tr.size(), 6u);
  EXPECT_EQ(tr[0].missing, std::optional<EdgeId>(1));
  EXPECT_EQ(tr[1].missing, std::optional<EdgeId>(1));
  EXPECT_FALSE(tr[2].missing.has_value());
  EXPECT_EQ(tr[3].missing, std::optional<EdgeId>(5));
  EXPECT_FALSE(tr[4].missing.has_value());
}

TEST(Fig2Script, MatchesPaperSchedule) {
  const NodeId n = 10, i = 2;
  auto script = make_fig2_script(n, i);
  // Rounds 1..n-3: edge i missing.
  for (Round r = 1; r <= n - 3; ++r)
    EXPECT_EQ(script(r), std::optional<EdgeId>(i)) << r;
  // Rounds n-2..3n-6: edge i-2 missing.
  for (Round r = n - 2; r <= 3 * n - 6; ++r)
    EXPECT_EQ(script(r), std::optional<EdgeId>(i - 2)) << r;
  EXPECT_FALSE(script(3 * n - 5).has_value());
}

TEST(Fig2Script, WrapsEdgeIndexForSmallI) {
  const NodeId n = 8;
  auto script = make_fig2_script(n, 0);
  EXPECT_EQ(script(n - 2), std::optional<EdgeId>(6));  // (0 - 2) mod 8
  auto script1 = make_fig2_script(n, 1);
  EXPECT_EQ(script1(n - 2), std::optional<EdgeId>(7));
}

TEST(RotationActivation, OneLiveAgentPerRound) {
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundNoChirality, 8);
  cfg.engine.record_trace = true;
  cfg.engine.fairness_window = 1000;
  cfg.stop.max_rounds = 30;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  RotationActivationAdversary adv(2);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  for (const sim::RoundTrace& rt : engine->trace()) {
    int active = 0;
    for (const auto& at : rt.agents) active += at.active ? 1 : 0;
    EXPECT_EQ(active, 1) << "round " << rt.round;
  }
}

TEST(BlockAgent, VictimNeverMovesOthersDo) {
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 8);
  cfg.stop.max_rounds = 300;
  cfg.stop.stop_when_explored = false;
  BlockAgentAdversary adv(1);
  const sim::RunResult r = core::run_exploration(cfg, &adv);
  EXPECT_EQ(r.agents[1].moves + r.agents[1].passive_moves, 0);
  EXPECT_GT(r.agents[0].moves, 0);
}

TEST(PreventMeeting, RemovesNothingWhenAgentsAreFar) {
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 12);
  cfg.start_nodes = {0, 6};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 3;  // far apart: no interference yet
  cfg.stop.stop_when_explored = false;
  PreventMeetingAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  for (const sim::RoundTrace& rt : engine->trace())
    EXPECT_FALSE(rt.missing.has_value());
}

TEST(PreventMeeting, AllowsSilentCrossings) {
  // Head-on agents at odd distance cross on an edge; that is not a meeting
  // and must not be prevented.
  ExplorationConfig cfg = default_config(AlgorithmId::ETUnconscious, 7);
  cfg.model = sim::Model::FSYNC;
  cfg.start_nodes = {0, 1};
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 1;
  cfg.stop.stop_when_explored = false;
  PreventMeetingAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Both agents moved across edge 0 in round 1 (swap).
  EXPECT_EQ(engine->body(0).node, 1);
  EXPECT_EQ(engine->body(1).node, 0);
}

TEST(NsFirstMover, ActivatesNonMoversPlusOneMover) {
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, 8);
  cfg.model = sim::Model::SSYNC_NS;
  cfg.engine.record_trace = true;
  cfg.engine.fairness_window = 1000;
  cfg.stop.max_rounds = 40;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  NsFirstMoverAdversary adv;
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // Both agents always want to move left, so exactly one (the mover that
  // slept longest) is active each round, and nobody ever moves.
  EXPECT_EQ(engine->body(0).moves, 0);
  EXPECT_EQ(engine->body(1).moves, 0);
  long long activations0 = 0, activations1 = 0;
  for (const sim::RoundTrace& rt : engine->trace()) {
    activations0 += rt.agents[0].active ? 1 : 0;
    activations1 += rt.agents[1].active ? 1 : 0;
  }
  // Fairness: the scheduler alternates the chosen first mover.
  EXPECT_GT(activations0, 5);
  EXPECT_GT(activations1, 5);
}

TEST(SlidingWindow, SelectsChaserAndParkedLeader) {
  ExplorationConfig cfg = default_config(AlgorithmId::PTBoundWithChirality, 10);
  cfg.start_nodes = {4, 0};
  cfg.orientations = {agent::kChiralOrientation, agent::kChiralOrientation};
  cfg.engine.record_trace = true;
  cfg.engine.fairness_window = 4096;
  cfg.stop.max_rounds = 30;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  SlidingWindowAdversary adv(0, 1);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // The leader is blocked on its port from round 2 onward and sleeps.
  bool leader_on_port_some_round = false;
  for (const sim::RoundTrace& rt : engine->trace())
    leader_on_port_some_round |= rt.agents[0].on_port;
  EXPECT_TRUE(leader_on_port_some_round);
  EXPECT_EQ(engine->body(0).moves, 0);  // leader never actively moves
  EXPECT_GT(engine->body(1).moves, 0);  // chaser is marched around
}

TEST(HeadOnPin, PinsApproachingAgents) {
  ExplorationConfig cfg =
      default_config(AlgorithmId::PTLandmarkWithChirality, 8);
  cfg.orientations = {agent::kChiralOrientation, agent::kMirroredOrientation};
  cfg.start_nodes = {0, 5};
  cfg.stop.max_rounds = 200;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  HeadOnPinAdversary adv(0, 1);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  ASSERT_TRUE(adv.pinned().has_value());
  // Both agents starve on the two ports of the pinned edge.
  EXPECT_TRUE(engine->body(0).on_port);
  EXPECT_TRUE(engine->body(1).on_port);
  const auto [u, v] = engine->ring().endpoints(*adv.pinned());
  EXPECT_TRUE((engine->body(0).node == u && engine->body(1).node == v) ||
              (engine->body(0).node == v && engine->body(1).node == u));
}

TEST(SegmentSeal, AlternatesSealEdges) {
  ExplorationConfig cfg = default_config(AlgorithmId::ETBoundNoChirality, 12);
  cfg.exact_n = 12;
  cfg.start_nodes = {1, 4, 6};
  cfg.engine.record_trace = true;
  cfg.engine.et_budget = 1'000'000;
  cfg.engine.fairness_window = 1'000'000;
  cfg.stop.max_rounds = 4000;
  cfg.stop.stop_when_all_terminated = false;
  cfg.stop.stop_when_explored_and_one_terminated = false;
  SegmentSealAdversary adv(7, 11);
  auto engine = core::make_engine(cfg, &adv);
  engine->run(cfg.stop);
  // No agent ever escapes the sealed segment {0..7}.
  for (const sim::RoundTrace& rt : engine->trace()) {
    for (const auto& at : rt.agents)
      EXPECT_LE(at.node, 7) << "round " << rt.round;
    if (rt.missing) {
      EXPECT_TRUE(*rt.missing == 7 || *rt.missing == 11);
    }
  }
}

TEST(ComposedAdversary, CapabilityFlagsMirrorInstalledHooks) {
  // Regression: the flags must be derived from the hooks that are actually
  // installed, not inherited from the conservative base defaults — a
  // hook-less composed adversary used to report observes_intents() == true
  // and forced IntentRecord construction on the engine hot path.
  ComposedAdversary none;
  EXPECT_FALSE(none.observes_intents());
  EXPECT_FALSE(none.reorders_contenders());

  ComposedAdversary activation_only(
      [](const sim::WorldView& v) {
        return std::vector<bool>(static_cast<std::size_t>(v.num_agents()),
                                 true);
      });
  EXPECT_FALSE(activation_only.observes_intents());
  EXPECT_FALSE(activation_only.reorders_contenders());

  ComposedAdversary edge_only(
      nullptr, [](const sim::WorldView&,
                  const std::vector<sim::IntentRecord>&)
                   -> std::optional<EdgeId> { return std::nullopt; });
  EXPECT_TRUE(edge_only.observes_intents());
  EXPECT_FALSE(edge_only.reorders_contenders());

  ComposedAdversary tie_only(
      nullptr, nullptr,
      [](const sim::WorldView&, PortRef, std::vector<AgentId>&) {});
  EXPECT_FALSE(tie_only.observes_intents());
  EXPECT_TRUE(tie_only.reorders_contenders());
}

TEST(ComposedAdversary, EdgeHookStillReceivesIntentRecords) {
  // The observes_intents() == true path: an edge hook must keep seeing the
  // fully-populated IntentRecord vector for the agents activated that
  // round (the engine may only skip record construction when the flag says
  // no hook reads them).
  ExplorationConfig cfg =
      default_config(AlgorithmId::UnconsciousExploration, 8);
  cfg.stop.max_rounds = 5;
  cfg.stop.stop_when_explored = false;
  int rounds_with_records = 0;
  ComposedAdversary adv(
      nullptr,
      [&](const sim::WorldView&,
          const std::vector<sim::IntentRecord>& intents)
          -> std::optional<EdgeId> {
        if (!intents.empty()) ++rounds_with_records;
        for (const sim::IntentRecord& record : intents)
          EXPECT_GE(record.agent, 0);
        return std::nullopt;
      });
  core::run_exploration(cfg, &adv);
  EXPECT_EQ(rounds_with_records, 5);
}

}  // namespace
}  // namespace dring::adversary
