// Algorithms PTBoundWithChirality (paper, Figure 14 / Theorem 12) and
// PTLandmarkWithChirality (Figure 17 / Theorem 14).
//
// SSYNC with Passive Transport, two anonymous agents WITH chirality.
// Explores with strong partial termination (one agent always explicitly
// terminates; the other terminates or waits perpetually on a port) in
// O(N^2) / O(n^2) edge traversals.
//
//   Init:    Explore(left  | DONE: Terminate; catches: Bounce)
//   Bounce:  leftSteps <- Esteps;
//            if rightSteps != bottom and rightSteps >= leftSteps: Terminate
//            Explore(right | DONE: Terminate; Btime > 0: Reverse)
//   Reverse: rightSteps <- Esteps
//            Explore(left  | DONE: Terminate; catches: Bounce)
//
// where DONE is "Tnodes >= N" for the bound variant and "n is known"
// (a full loop around the landmark) for the landmark variant.
#pragma once

#include "agent/explore_base.hpp"

namespace dring::algo {

class PTTwoAgents final : public agent::CloneableMachine<PTTwoAgents> {
 public:
  enum State : int { Init, Bounce, Reverse };
  enum class Variant {
    KnownBound,  ///< Figure 14: terminate on Tnodes >= N
    Landmark,    ///< Figure 17: terminate once n is known
  };

  /// KnownBound requires `k.upper_bound`; Landmark needs no knowledge.
  PTTwoAgents(Variant variant, agent::Knowledge k);

  std::string algorithm_name() const override {
    return variant_ == Variant::KnownBound ? "PTBoundWithChirality"
                                           : "PTLandmarkWithChirality";
  }

  std::int64_t left_steps() const { return left_steps_; }
  std::int64_t right_steps() const { return right_steps_; }

 protected:
  agent::StepResult run_state(int state, const agent::Snapshot& snap) override;
  void enter_state(int state, const agent::Snapshot& snap) override;
  std::string name_of(int state) const override;

 private:
  bool done() const;

  Variant variant_;
  std::int64_t bound_n_ = -1;
  // bottom is encoded as -1 (paper: leftSteps, rightSteps <- bottom).
  std::int64_t left_steps_ = -1;
  std::int64_t right_steps_ = -1;
  bool crossing_detected_ = false;
};

}  // namespace dring::algo
