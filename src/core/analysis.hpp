// Campaign analytics: turn JSONL result stores back into tables,
// frontiers and phase-transition curves.
//
// The paper's results are frontier statements — which (n, k, knowledge,
// model) cells are explorable and at what round cost.  The campaign
// subsystem (core/campaign.hpp) mass-produces per-cell rows; this module
// is the query side:
//
//   * load one or more stores into a typed row set (union by fingerprint,
//     conflicting payloads rejected);
//   * group rows by any subset of the scenario axes and aggregate —
//     success rate, metric distribution (min/mean/median/p95/max),
//     per-seed dispersion (population stddev);
//   * scan any numeric axis inside each group for the frontier cell where
//     the success rate crosses a threshold — the generalization of
//     core/feasibility_map's hand-rolled sweep to a query over any
//     campaign store.
//
// Everything downstream of the row set is deterministic: groups are
// sorted numeric-aware, numbers are rendered with fixed formats, so the
// rendered reports are byte-stable — suitable for committing next to a
// spec and diffing across commits (tools/dring_report).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace dring::core {

// --- loading ---------------------------------------------------------------

/// Read and union several stores (merge_result_stores semantics: identical
/// duplicate rows collapse, conflicting payloads for one fingerprint throw
/// std::runtime_error naming the fingerprint, and stores with different
/// provenance refuse to union — load cross-version stores separately and
/// compare them with paired_compare).  Rows come back in canonical store
/// order under the shared provenance.
ResultStore load_result_stores(const std::vector<std::string>& paths);

// --- axes ------------------------------------------------------------------

/// The queryable scenario axes.  Numeric axes can be frontier-scanned:
///
///   algorithm        registry name                        (string)
///   n                ring size                            (numeric)
///   agents           team size k, 0 = theorem's count     (numeric)
///   adversary        adversary family name                (string)
///   t_interval       T-interval-connectivity parameter    (numeric)
///   model            synchrony override, "native" if none (string)
///   max_rounds       round budget, 0 = default            (numeric)
///   remove_prob      "random" removal probability         (numeric)
///   target_prob      "targeted-random" probability        (numeric)
///   activation_prob  SSYNC activation probability         (numeric)
///
/// Aliases accepted on input: k = agents, family = adversary,
/// T = t = t_interval.
const std::vector<std::string>& analysis_axes();

/// Resolve aliases to the canonical axis name; throws std::invalid_argument
/// for an unknown key (the message lists the valid axes).
std::string canonical_axis(const std::string& key);

/// Whether the (canonical) axis carries numeric values.
bool axis_is_numeric(const std::string& axis);

/// The row's value on a canonical axis, as a display/grouping string.
/// Numeric axes render via fmt_axis (doubles "%.6g", integers exact).
std::string axis_value(const CampaignRow& row, const std::string& axis);

/// The row's value on a numeric canonical axis; throws
/// std::invalid_argument for non-numeric axes.
double axis_number(const CampaignRow& row, const std::string& axis);

/// Deterministic number rendering used for axis values ("%.6g").
std::string fmt_axis(double value);

// --- aggregation -----------------------------------------------------------

/// Which per-run quantity the distribution statistics are computed over.
/// ExploredRound samples only successful runs (the round cost of the runs
/// that worked); Rounds and Moves sample every run.
enum class Metric { ExploredRound, Rounds, Moves };

Metric metric_from_string(const std::string& name);
std::string to_string(Metric metric);

/// A run counts as a success when it explored the ring and no agent
/// terminated prematurely (the paper's correctness condition).
bool row_success(const CampaignRow& row);

/// The row's sample for a metric; nullopt when the row does not
/// contribute (ExploredRound on an unsuccessful run).
std::optional<double> metric_sample(const CampaignRow& row, Metric metric);

/// Wilson score interval on a binomial success rate — the uncertainty
/// column of the paper-artifact tables.  Unlike the normal approximation
/// it stays inside [0, 1] and behaves at 0/n and n/n.
struct WilsonInterval {
  double lo = 0;
  double hi = 1;
};

/// Wilson interval for `successes` out of `runs` at critical value `z`
/// (1.96 = 95%).  runs == 0 yields the vacuous [0, 1].
WilsonInterval wilson_interval(int successes, int runs, double z = 1.96);

/// Aggregate of one group of rows.
struct Aggregate {
  int runs = 0;
  int successes = 0;   ///< explored && !premature
  int premature = 0;   ///< runs with a premature termination
  int violations = 0;  ///< total verifier findings across runs
  WilsonInterval rate_ci;  ///< Wilson 95% interval on the success rate
  /// Distribution of the selected metric over the contributing runs.
  int samples = 0;
  double min = 0, max = 0;
  double mean = 0, median = 0, p95 = 0;
  double stddev = 0;  ///< population stddev — per-seed dispersion

  double success_rate() const {
    return runs > 0 ? static_cast<double>(successes) / runs : 0.0;
  }
};

/// One output row of a group-by query: the group's key values (parallel to
/// the requested keys) plus its aggregate.
struct GroupRow {
  std::vector<std::string> key;
  Aggregate agg;
};

/// Group rows by the given canonical axes and aggregate `metric` within
/// each group.  Groups come back sorted by key, numeric-aware per
/// component.  Empty `group_keys` yields one global group.
std::vector<GroupRow> aggregate_rows(const std::vector<CampaignRow>& rows,
                                     const std::vector<std::string>& group_keys,
                                     Metric metric);

/// Linear-interpolation quantile (q in [0,1]) of an ascending-sorted,
/// non-empty sample vector: index q*(N-1), fractional indexes interpolate.
double quantile(const std::vector<double>& sorted, double q);

/// The exact fold behind aggregate_rows, over one group's member rows.
/// Exposed so alternative row sources (the query cache) reproduce
/// aggregate report bytes without routing through a row-vector copy.
Aggregate fold_rows(const std::vector<const CampaignRow*>& rows,
                    Metric metric);

/// Numeric-aware comparison of two group keys (component-wise; numeric
/// components compare by value, string components lexically) — the group
/// ordering of aggregate_rows, exposed for the same reason as fold_rows.
/// `numeric[i]` says whether component i is a numeric axis.
bool group_key_less(const std::vector<std::string>& a,
                    const std::vector<std::string>& b,
                    const std::vector<bool>& numeric);

// --- paired store comparison ------------------------------------------------

/// One fingerprint present in both stores of a paired comparison.
struct PairedRow {
  std::uint64_t fingerprint = 0;
  ScenarioSpec spec;  ///< from store A (identical in B by construction)
  bool success_a = false, success_b = false;
  std::optional<double> sample_a, sample_b;  ///< metric samples per side
  std::optional<double> delta;               ///< b - a, when both sampled
};

/// Per-fingerprint A/B comparison of two stores — the significance test
/// for "did this commit/axis change the measured behaviour?".
struct PairedComparison {
  int common = 0;             ///< fingerprints present in both stores
  int only_a = 0, only_b = 0;
  int success_flips_ab = 0;   ///< success in A, failure in B
  int success_flips_ba = 0;   ///< failure in A, success in B
  int pairs = 0;              ///< rows where both sides carry a sample
  int b_lower = 0;            ///< delta < 0 (B cheaper on a cost metric)
  int b_higher = 0;           ///< delta > 0
  int ties = 0;               ///< delta == 0
  double mean_delta = 0, median_delta = 0;
  /// Two-sided exact binomial sign test over the non-tied pairs: the
  /// probability of a split at least this lopsided under "no drift".
  double sign_test_p = 1.0;
  /// Store provenance of each side (describe() strings), set by the
  /// caller when known: the rendered report annotates the pairing as
  /// same-provenance or cross-version.  Empty = unknown; the annotation
  /// is emitted only when both sides are known.
  std::string provenance_a, provenance_b;
  std::vector<PairedRow> rows;  ///< common rows, fingerprint order
};

/// Exact two-sided binomial sign-test p-value for `wins` out of `trials`
/// fair coin flips: min(1, 2 * P[X <= min(wins, trials - wins)]).
/// trials == 0 yields 1.0.
double sign_test_p_value(int wins, int trials);

/// Join two row sets by fingerprint and compare the metric per pair.
PairedComparison paired_compare(const std::vector<CampaignRow>& a,
                                const std::vector<CampaignRow>& b,
                                Metric metric);

// --- frontier / phase transitions ------------------------------------------

/// Success rate at one value of the scanned axis.
struct FrontierPoint {
  double axis = 0;
  int runs = 0;
  double rate = 0;
};

/// A threshold crossing between two adjacent axis values: the feasibility
/// frontier passes between `before` and `after`.
struct FrontierCrossing {
  double axis_before = 0, axis_after = 0;
  double rate_before = 0, rate_after = 0;
  bool falling = false;  ///< rate dropped below the threshold going up-axis
};

/// One group's scan along the axis.
struct FrontierGroup {
  std::vector<std::string> key;          ///< values of the group keys
  std::vector<FrontierPoint> curve;      ///< ascending axis order
  std::vector<FrontierCrossing> crossings;
};

/// Scan `axis` (numeric) within each (group_keys)-group: the curve of
/// success rates by axis value and every adjacent pair where the rate
/// crosses `threshold`.  A monotone feasibility axis yields exactly one
/// crossing — the phase transition; zero crossings mean the group is
/// uniformly feasible or infeasible over the stored range.  The axis must
/// not also be a group key.
std::vector<FrontierGroup> detect_frontier(
    const std::vector<CampaignRow>& rows,
    const std::vector<std::string>& group_keys, const std::string& axis,
    double threshold);

// --- rendering -------------------------------------------------------------

enum class ReportFormat { Markdown, Csv, Json };

ReportFormat report_format_from_string(const std::string& name);

/// One rendered table line (trailing newline included): a markdown pipe
/// row or a CSV record with RFC-4180 quoting.  The single table renderer
/// shared by every tabular surface (dring_report, dring_metrics,
/// dring_dashboard) — Json callers build documents instead.
std::string render_cells(const std::vector<std::string>& cells,
                         ReportFormat format);

/// The markdown header/body separator row for `columns` columns.
std::string md_separator_row(std::size_t columns);

/// Byte-stable rendering of a group-by report (trailing newline included).
/// Markdown: a pipe table; CSV: header + rows; JSON: one canonical
/// util::Json document.
std::string render_aggregate_report(const std::vector<GroupRow>& groups,
                                    const std::vector<std::string>& group_keys,
                                    Metric metric, ReportFormat format);

/// Byte-stable rendering of a frontier report.
std::string render_frontier_report(const std::vector<FrontierGroup>& groups,
                                   const std::vector<std::string>& group_keys,
                                   const std::string& axis, double threshold,
                                   ReportFormat format);

/// Byte-stable rendering of a paired comparison (summary plus every
/// non-tied pair, fingerprint order).
std::string render_paired_report(const PairedComparison& cmp, Metric metric,
                                 ReportFormat format);

}  // namespace dring::core
