// Tests for the telemetry subsystem: histogram bucket-boundary math, the
// metrics registry's canonical snapshots and their JSON round-trip, the
// structured event log (points, spans, file round-trip), the sidecar
// contract (store bytes identical with telemetry on or off), the timeline
// and summary renderers, and the shared log-level plumbing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/campaign.hpp"
#include "core/telemetry.hpp"
#include "util/metrics.hpp"

namespace dring::core {
namespace {

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- util::Histogram ---------------------------------------------------------

TEST(Histogram, BucketBoundaryMathIsUpperInclusive) {
  const util::Histogram h({10, 100, 1000});
  // Buckets are Prometheus-style "le": value <= bound lands at the bound.
  EXPECT_EQ(h.bucket_index(-5), 0u);
  EXPECT_EQ(h.bucket_index(0), 0u);
  EXPECT_EQ(h.bucket_index(9), 0u);
  EXPECT_EQ(h.bucket_index(10), 0u);   // exactly on a bound: that bucket
  EXPECT_EQ(h.bucket_index(11), 1u);
  EXPECT_EQ(h.bucket_index(100), 1u);
  EXPECT_EQ(h.bucket_index(101), 2u);
  EXPECT_EQ(h.bucket_index(1000), 2u);
  EXPECT_EQ(h.bucket_index(1001), 3u);  // overflow bucket
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(util::Histogram({}), std::invalid_argument);
  EXPECT_THROW(util::Histogram({1, 1}), std::invalid_argument);
  EXPECT_THROW(util::Histogram({10, 5}), std::invalid_argument);
}

TEST(Histogram, ObserveFillsCountsAndSum) {
  util::Histogram h({10, 100});
  h.observe(3);
  h.observe(10);
  h.observe(11);
  h.observe(5000);
  const util::Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.count, 4);
  EXPECT_EQ(snap.sum, 3 + 10 + 11 + 5000);
}

TEST(Histogram, ExponentialBoundsDoubleFromStart) {
  const std::vector<long long> bounds =
      util::Histogram::exponential_bounds(64, 5);
  EXPECT_EQ(bounds, (std::vector<long long>{64, 128, 256, 512, 1024}));
  EXPECT_THROW(util::Histogram::exponential_bounds(0, 3),
               std::invalid_argument);
  // The ladder saturates instead of overflowing long long.
  const std::vector<long long> big =
      util::Histogram::exponential_bounds(1, 80);
  EXPECT_LT(big.size(), 80u);
  EXPECT_GT(big.back(), 1LL << 61);
}

// --- util::MetricsRegistry ---------------------------------------------------

TEST(MetricsRegistry, SnapshotIsCanonicalAndRoundTrips) {
  util::MetricsRegistry registry;
  registry.counter("b.count").add(3);
  registry.counter("a.count").add(1);
  registry.gauge("rate").set(0.5);
  registry.histogram("lat_us", {10, 100}).observe(7);

  const util::Json snap = registry.snapshot_json();
  const std::string dump = snap.dump();
  // Parse(dump) -> dump is the identity: the sidecar survives tooling
  // round trips byte for byte.
  EXPECT_EQ(util::Json::parse(dump).dump(), dump);
  // Keys sort, so a.count precedes b.count regardless of creation order.
  EXPECT_LT(dump.find("a.count"), dump.find("b.count"));
  EXPECT_EQ(snap.at("counters").at("b.count").as_int(), 3);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("rate").as_double(), 0.5);
  const util::Json& h = snap.at("histograms").at("lat_us");
  EXPECT_EQ(h.at("count").as_int(), 1);
  EXPECT_EQ(h.at("sum").as_int(), 7);
  const util::Json::Array& buckets = h.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].at("le").as_int(), 10);
  EXPECT_EQ(buckets[0].at("count").as_int(), 1);
  EXPECT_EQ(buckets[2].at("le").as_string(), "inf");

  // Same observations in a fresh registry -> same bytes.
  util::MetricsRegistry again;
  again.histogram("lat_us", {10, 100}).observe(7);
  again.gauge("rate").set(0.5);
  again.counter("a.count").add(1);
  again.counter("b.count").add(3);
  EXPECT_EQ(again.snapshot_json().dump(), dump);
}

TEST(MetricsRegistry, EmptySectionsRenderAsObjects) {
  util::MetricsRegistry registry;
  EXPECT_EQ(registry.snapshot_json().dump(),
            R"({"counters":{},"gauges":{},"histograms":{}})");
}

TEST(MetricsRegistry, NameTypeConflictsThrow) {
  util::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x", {1}), std::invalid_argument);
  // Same name + same type is get-or-create, not an error.
  registry.counter("x").add(2);
  EXPECT_EQ(registry.counter("x").value(), 2);
}

// --- event log ---------------------------------------------------------------

TEST(TelemetryEvents, EventJsonRoundTrips) {
  TelemetryEvent event;
  event.seq = 7;
  event.t_us = 1234;
  event.name = "orchestrate.dispatch";
  event.kind = "point";
  event.labels = {{"attempt", "1"}, {"shard", "2"}};
  const util::Json j = to_json(event);
  EXPECT_EQ(j.dump(),
            R"({"kind":"point","labels":{"attempt":"1","shard":"2"},)"
            R"("name":"orchestrate.dispatch","seq":7,"t_us":1234})");
  const TelemetryEvent back = telemetry_event_from_json(j);
  EXPECT_EQ(back.seq, event.seq);
  EXPECT_EQ(back.labels, event.labels);
}

TEST(TelemetryEvents, WritesPointsAndSpansToSidecar) {
  const std::string base = testing::TempDir() + "telemetry_events";
  telemetry().enable(base);
  ASSERT_TRUE(telemetry().enabled());
  EXPECT_EQ(telemetry().events_path(), base + ".events.jsonl");
  EXPECT_EQ(telemetry().metrics_path(), base + ".metrics.json");
  telemetry().event("test.point", {{"k", "v"}});
  {
    Telemetry::Span span = telemetry().span("test.span", {{"id", "1"}});
    telemetry().event("test.inner");
  }
  telemetry().metrics().counter("test.counter").add(5);
  telemetry().shutdown();
  EXPECT_FALSE(telemetry().enabled());

  const std::vector<TelemetryEvent> events =
      read_events_file(base + ".events.jsonl");
  ASSERT_EQ(events.size(), 4u);
  // seq is the emission order, dense from 0.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq, static_cast<long long>(i));
  EXPECT_EQ(events[0].name, "test.point");
  EXPECT_EQ(events[0].kind, "point");
  EXPECT_EQ(events[1].name, "test.span");
  EXPECT_EQ(events[1].kind, "begin");
  EXPECT_EQ(events[2].name, "test.inner");
  EXPECT_EQ(events[3].name, "test.span");
  EXPECT_EQ(events[3].kind, "end");
  EXPECT_EQ(events[3].labels.at("id"), "1");
  EXPECT_EQ(events[3].labels.count("duration_us"), 1u);
  // Timestamps never regress within the file.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].t_us, events[i].t_us);

  // shutdown() wrote the metrics sidecar.
  const util::Json metrics =
      util::Json::parse(file_bytes(base + ".metrics.json"));
  EXPECT_EQ(metrics.at("counters").at("test.counter").as_int(), 5);
}

TEST(TelemetryEvents, DisabledTelemetryIsInert) {
  ASSERT_FALSE(telemetry().enabled());
  telemetry().event("dropped");
  { Telemetry::Span span = telemetry().span("also.dropped"); }
  EXPECT_EQ(telemetry().events_path(), "");
}

TEST(TelemetryEvents, ReadRejectsMalformedLines) {
  const std::string path = testing::TempDir() + "bad_events.jsonl";
  std::ofstream(path) << "{\"seq\":0}\nnot json\n";
  EXPECT_THROW(read_events_file(path), std::invalid_argument);
  EXPECT_THROW(read_events_file(testing::TempDir() + "missing_events.jsonl"),
               std::runtime_error);
}

// --- sidecar contract --------------------------------------------------------

TEST(TelemetrySidecars, StoreBytesIdenticalWithTelemetryOnOrOff) {
  CampaignSpec campaign;
  campaign.name = "telemetry_bytes";
  campaign.algorithms = {"KnownNNoChirality"};
  campaign.sizes = {5, 6};
  campaign.seeds_per_cell = 2;
  campaign.salt = 3;
  campaign.max_rounds = 3000;

  const std::string off_path = testing::TempDir() + "telemetry_off.jsonl";
  const std::string on_path = testing::TempDir() + "telemetry_on.jsonl";
  CampaignOptions options;
  options.threads = 1;

  options.out_path = off_path;
  run_campaign(campaign, options);

  telemetry().enable(on_path);
  options.out_path = on_path;
  run_campaign(campaign, options);
  telemetry().shutdown();

  // The whole contract: sidecars appear, canonical bytes do not move.
  EXPECT_EQ(file_bytes(on_path), file_bytes(off_path));
  EXPECT_TRUE(std::filesystem::exists(on_path + ".events.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(on_path + ".metrics.json"));

  const util::Json metrics =
      util::Json::parse(file_bytes(on_path + ".metrics.json"));
  EXPECT_EQ(metrics.at("counters").at("campaign.cells_executed").as_int(), 4);
  EXPECT_GT(metrics.at("counters").at("engine.rounds").as_int(), 0);
  EXPECT_GT(metrics.at("counters").at("engine.snapshots").as_int(), 0);
  EXPECT_EQ(metrics.at("counters").at("sweep.tasks").as_int(), 4);
  EXPECT_EQ(
      metrics.at("histograms").at("sweep.task_us").at("count").as_int(), 4);
}

// --- renderers ---------------------------------------------------------------

std::vector<TelemetryEvent> fixture_events() {
  std::vector<TelemetryEvent> events;
  const auto add = [&](const std::string& name,
                       std::map<std::string, std::string> labels) {
    TelemetryEvent event;
    event.seq = static_cast<long long>(events.size());
    event.t_us = 1000 * event.seq;
    event.name = name;
    event.kind = "point";
    event.labels = std::move(labels);
    events.push_back(std::move(event));
  };
  add("orchestrate.dispatch", {{"shard", "1"}, {"attempt", "1"}});
  add("orchestrate.dispatch", {{"shard", "0"}, {"attempt", "1"}});
  add("orchestrate.worker_exit",
      {{"shard", "0"}, {"attempt", "1"}, {"code", "70"}});
  add("orchestrate.retry",
      {{"shard", "0"}, {"next_attempt", "2"}, {"delay_ms", "50"}});
  add("orchestrate.shard_complete", {{"shard", "1"}, {"attempt", "1"}});
  add("orchestrate.merge", {{"rows", "8"}});
  return events;
}

TEST(RenderTimeline, GroupsByShardAndOmitsTimesByDefault) {
  const std::string md = render_timeline(fixture_events());
  // Shard-less events lead in a "run" section; shards sort numerically.
  EXPECT_LT(md.find("## run"), md.find("## shard 0"));
  EXPECT_LT(md.find("## shard 0"), md.find("## shard 1"));
  EXPECT_NE(md.find("- orchestrate.merge rows=8"), std::string::npos);
  EXPECT_NE(md.find("- orchestrate.worker_exit attempt=1 code=70"),
            std::string::npos);
  EXPECT_NE(md.find("- orchestrate.retry delay_ms=50 next_attempt=2"),
            std::string::npos);
  // No wall-clock anywhere: identical event sequences render to
  // identical bytes.
  EXPECT_EQ(md.find("[+"), std::string::npos);
  EXPECT_EQ(md, render_timeline(fixture_events()));
}

TEST(RenderTimeline, WithTimesIncludesStamps) {
  const std::string md =
      render_timeline(fixture_events(), /*with_times=*/true);
  EXPECT_NE(md.find("[+0.00"), std::string::npos);
}

TEST(RenderMetricsSummary, IncludesDerivedRates) {
  util::MetricsRegistry registry;
  registry.counter("engine.probe_calls").add(8);
  registry.counter("engine.probe_hits").add(6);
  registry.counter("campaign.cells_executed").add(3);
  registry.counter("campaign.resume_hits").add(1);
  const std::string md = render_metrics_summary(registry.snapshot_json());
  EXPECT_NE(md.find("| engine.probe_calls | 8 |"), std::string::npos);
  EXPECT_NE(md.find("| engine probe-memo hit rate | 75% |"),
            std::string::npos);
  EXPECT_NE(md.find("| campaign resume-cache hit rate | 25% |"),
            std::string::npos);
}

TEST(RenderMetricsSummary, BatchRowsRenderWhenInstrumented) {
  util::MetricsRegistry registry;
  registry.gauge("sweep.batch.lane_utilization").set(0.875);
  util::Histogram& lifetimes =
      registry.histogram("sweep.batch.retire_rounds", telemetry_round_bounds());
  lifetimes.observe(10);
  lifetimes.observe(30);
  registry.counter("sweep.batch.scalar_tasks").add(2);
  const std::string md = render_metrics_summary(registry.snapshot_json());
  EXPECT_NE(md.find("| sweep batch lane utilization | 87.5% |"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("| sweep batch mean lane lifetime | 20 rounds |"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("| sweep.batch.scalar_tasks | 2 |"), std::string::npos);
  // Byte-stable: same metric state renders to the same bytes.
  EXPECT_EQ(md, render_metrics_summary(registry.snapshot_json()));
}

TEST(RenderMetricsSummary, QueryRowsRenderWhenInstrumented) {
  util::MetricsRegistry registry;
  registry.counter("query.cache.hits").add(9);
  registry.counter("query.cache.misses").add(3);
  util::Histogram& latency =
      registry.histogram("query.latency_us", telemetry_time_bounds());
  latency.observe(10);
  latency.observe(30);
  const std::string md = render_metrics_summary(registry.snapshot_json());
  EXPECT_NE(md.find("| query cache hit rate | 75% |"), std::string::npos)
      << md;
  EXPECT_NE(md.find("| query mean latency | 20 us |"), std::string::npos)
      << md;
  // Byte-stable: same metric state renders to the same bytes.
  EXPECT_EQ(md, render_metrics_summary(registry.snapshot_json()));
}

TEST(RenderMetricsSummary, QueryRowsAbsentWithoutQueryMetrics) {
  util::MetricsRegistry registry;
  registry.counter("sweep.tasks").add(4);
  const std::string md = render_metrics_summary(registry.snapshot_json());
  EXPECT_EQ(md.find("query cache hit rate"), std::string::npos);
  EXPECT_EQ(md.find("query mean latency"), std::string::npos);
}

TEST(RenderMetricsSummary, BatchRowsAbsentWithoutBatchMetrics) {
  util::MetricsRegistry registry;
  registry.counter("sweep.tasks").add(4);
  const std::string md = render_metrics_summary(registry.snapshot_json());
  EXPECT_EQ(md.find("sweep batch lane utilization"), std::string::npos);
  EXPECT_EQ(md.find("sweep batch mean lane lifetime"), std::string::npos);
}

TEST(TelemetryRoundBounds, DoublingLadderFromOne) {
  const std::vector<long long>& bounds = telemetry_round_bounds();
  ASSERT_EQ(bounds.size(), 24u);
  EXPECT_EQ(bounds.front(), 1);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_EQ(bounds[i], 2 * bounds[i - 1]);
  // Same object every call: histogram layouts stay consistent.
  EXPECT_EQ(&bounds, &telemetry_round_bounds());
}

TEST(RenderBenchTrend, TabulatesBaselineCurrentSpeedup) {
  const util::Json bench = util::Json::parse(
      R"({"baseline":{"BM_X/64":{"real_time_ns":100.0}},)"
      R"("current":{"BM_X/64":{"real_time_ns":25.0}},)"
      R"("speedup_vs_baseline":{"BM_X/64":4.0}})");
  const std::string md = render_bench_trend(bench);
  EXPECT_NE(md.find("| BM_X/64 | 100 | 25 | 4x |"), std::string::npos);
}

// --- csv renderer parity -----------------------------------------------------

TEST(RenderTimeline, CsvIsOneFlatTableWithSameOrdering) {
  const std::string csv =
      render_timeline(fixture_events(), /*with_times=*/false,
                      ReportFormat::Csv);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "shard,kind,name,labels");
  // Same grouping as the markdown sections: the shard-less merge event
  // leads as "run", shards follow numerically, seq order within.
  EXPECT_LT(csv.find("run,point,orchestrate.merge,rows=8"),
            csv.find("0,point,orchestrate.dispatch,attempt=1"));
  EXPECT_LT(csv.find("0,point,orchestrate.retry,delay_ms=50 next_attempt=2"),
            csv.find("1,point,orchestrate.dispatch,attempt=1"));
  // No timestamps without --times: byte-stable like the markdown form.
  EXPECT_EQ(csv.find("t_us"), std::string::npos);
  EXPECT_EQ(csv, render_timeline(fixture_events(), false,
                                 ReportFormat::Csv));
}

TEST(RenderMetricsSummary, CsvCarriesEveryKindIncludingDerived) {
  util::MetricsRegistry registry;
  registry.counter("engine.probe_calls").add(8);
  registry.counter("engine.probe_hits").add(6);
  const std::string csv =
      render_metrics_summary(registry.snapshot_json(), ReportFormat::Csv);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "kind,name,value,count,sum");
  EXPECT_NE(csv.find("counter,engine.probe_calls,8,-,-"),
            std::string::npos);
  // The derived rate needs quoting in csv (its name embeds spaces but no
  // comma, so it stays bare under RFC-4180).
  EXPECT_NE(csv.find("derived,engine probe-memo hit rate,75%,-,-"),
            std::string::npos)
      << csv;
}

TEST(RenderBenchTrend, HistoryErasRenderInBothFormats) {
  const util::Json bench = util::Json::parse(
      R"({"baseline":{"BM_X/64":{"real_time_ns":100.0}},)"
      R"("current":{"BM_X/64":{"real_time_ns":25.0}},)"
      R"("speedup_vs_baseline":{"BM_X/64":4.0},)"
      R"("history":[{"engine":"dring-1.2.0","date":"2026-03-01",)"
      R"("marks":{"BM_X/64":{"real_time_ns":50.0,)"
      R"("items_per_second":2.0}}}]})");
  const std::string md = render_bench_trend(bench);
  EXPECT_NE(md.find("## rebaseline history"), std::string::npos);
  EXPECT_NE(md.find("| dring-1.2.0 (2026-03-01) | BM_X/64 | 50 | 2 |"),
            std::string::npos)
      << md;
  const std::string csv = render_bench_trend(bench, ReportFormat::Csv);
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "benchmark,era,real_time_ns,items_per_second,speedup");
  EXPECT_NE(csv.find("BM_X/64,baseline,100,0,-"), std::string::npos) << csv;
  EXPECT_NE(csv.find("BM_X/64,current,25,0,4"), std::string::npos);
  EXPECT_NE(csv.find("BM_X/64,history:dring-1.2.0@2026-03-01,50,2,-"),
            std::string::npos);
  // Without a history member the md page keeps its original shape.
  const util::Json no_history = util::Json::parse(
      R"({"current":{"BM_X/64":{"real_time_ns":25.0}}})");
  EXPECT_EQ(render_bench_trend(no_history).find("rebaseline history"),
            std::string::npos);
}

// --- log levels --------------------------------------------------------------

TEST(LogLevels, CliMappingAndPrecedence) {
  const auto level_of = [](std::vector<const char*> argv) {
    argv.insert(argv.begin(), "tool");
    const util::Cli cli(static_cast<int>(argv.size()), argv.data());
    return log_level_from_cli(cli);
  };
  EXPECT_EQ(level_of({}), LogLevel::kInfo);
  EXPECT_EQ(level_of({"--verbose"}), LogLevel::kDebug);
  EXPECT_EQ(level_of({"--quiet"}), LogLevel::kQuiet);
  // --quiet wins when both are given.
  EXPECT_EQ(level_of({"--quiet", "--verbose"}), LogLevel::kQuiet);

  const LogLevel before = log_level();
  set_log_level(LogLevel::kQuiet);
  EXPECT_TRUE(log_enabled(LogLevel::kQuiet));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  set_log_level(before);
}

}  // namespace
}  // namespace dring::core
