// Tests for the evolving-ring view and the offline exploration optimum
// (the centralised-knowledge baseline the paper contrasts live
// exploration with).
#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "ring/evolving_ring.hpp"
#include "sim/trace_io.hpp"
#include "util/rng.hpp"

namespace dring::ring {
namespace {

EvolvingRing static_ring(NodeId n, Round horizon) {
  return EvolvingRing(n, std::vector<std::optional<EdgeId>>(
                             static_cast<std::size_t>(horizon), std::nullopt));
}

TEST(EvolvingRing, EdgePresenceFollowsSchedule) {
  EvolvingRing ring(5, {std::nullopt, EdgeId{2}, EdgeId{2}, std::nullopt});
  EXPECT_TRUE(ring.edge_present(2, 1));
  EXPECT_FALSE(ring.edge_present(2, 2));
  EXPECT_FALSE(ring.edge_present(2, 3));
  EXPECT_TRUE(ring.edge_present(3, 2));
  EXPECT_TRUE(ring.edge_present(2, 4));
  EXPECT_TRUE(ring.edge_present(2, 100));  // beyond horizon: present
}

TEST(EvolvingRing, FromScriptSamplesRounds) {
  const auto ring = EvolvingRing::from_script(
      6,
      [](Round r) -> std::optional<EdgeId> {
        return r % 2 == 0 ? std::optional<EdgeId>(1) : std::nullopt;
      },
      10);
  EXPECT_EQ(ring.horizon(), 10);
  EXPECT_TRUE(ring.edge_present(1, 1));
  EXPECT_FALSE(ring.edge_present(1, 2));
}

TEST(OfflineOptimum, StaticRingSingleAgentIsNMinus1) {
  // On a static ring the offline optimum is a straight walk: n-1 moves.
  for (NodeId n : {4, 7, 11}) {
    EXPECT_EQ(offline_exploration_time(static_ring(n, 3 * n), 0, 3 * n),
              n - 1)
        << n;
  }
}

TEST(OfflineOptimum, StaticRingTwoAgentsIsHalf) {
  // Each agent visits at most one new node per round; 6 unvisited nodes
  // shared by 2 agents need >= 3 rounds — and 3 is achievable (each
  // covers the 3-node arc on its side).
  EXPECT_EQ(offline_two_agent_exploration_time(static_ring(8, 24), 0, 4, 24),
            3);
  // Starting together: 7 unvisited nodes, >= ceil(7/2) = 4; split
  // left/right achieves it.
  EXPECT_EQ(offline_two_agent_exploration_time(static_ring(8, 24), 0, 0, 24),
            4);
}

TEST(OfflineOptimum, PerpetuallyMissingEdgeForcesLongWay) {
  // Edge 0 never present: from node 1 the agent must go the long way:
  // it can reach node 0... ring 0-1-2-3-4: edge 0 = (0,1) missing forever.
  // From 1: walk 1->2->3->4->0 = 4 moves (n-1); same as static since the
  // straight walk never needs edge 0... from node 0 walking left is
  // blocked; 0->4->3->2->1 = 4 moves. Still n-1.
  const NodeId n = 5;
  EvolvingRing ring(n, std::vector<std::optional<EdgeId>>(40, EdgeId{0}));
  EXPECT_EQ(offline_exploration_time(ring, 1, 40), n - 1);
  EXPECT_EQ(offline_exploration_time(ring, 0, 40), n - 1);
}

TEST(OfflineOptimum, BlockingWallForcesWaitOrDetour) {
  // The agent starts at 2 on a 5-ring; the edge it would cross first is
  // missing for the first 6 rounds in the "short" plan direction; the
  // offline planner detours the other way without losing time.
  const NodeId n = 5;
  std::vector<std::optional<EdgeId>> missing(12, EdgeId{2});  // edge (2,3)
  EvolvingRing ring(n, std::move(missing));
  // From 2: Ccw first step needs edge 2 (missing). Plan: go Cw:
  // 2->1->0->4->3: 4 moves. Optimum stays n-1.
  EXPECT_EQ(offline_exploration_time(ring, 2, 12), n - 1);
}

TEST(OfflineOptimum, AdversarialScheduleCostsMoreThanStatic) {
  // Under the Figure 2 schedule the offline single agent from v_i still
  // explores quickly (it knows the schedule and starts in the right
  // direction), far faster than the live 3n-6.
  const NodeId n = 10;
  const auto ring = EvolvingRing::from_script(
      n, adversary::make_fig2_script(n, 2), 5 * n);
  const Round offline = offline_exploration_time(ring, 2, 5 * n);
  ASSERT_GT(offline, 0);
  EXPECT_LE(offline, 2 * n);
  EXPECT_LT(offline, 3 * n - 6);  // strictly better than the live bound
}

TEST(OfflineOptimum, UnreachableWithinBudgetReturnsMinusOne) {
  EXPECT_EQ(offline_exploration_time(static_ring(9, 3), 0, 3), -1);
}

TEST(OfflineOptimum, RecordedLiveScheduleReplaysOffline) {
  // Record a live run's schedule, then compute the offline optimum on the
  // very same evolving ring: it must not exceed the live exploration time.
  core::ExplorationConfig cfg =
      core::default_config(algo::AlgorithmId::KnownNNoChirality, 8);
  cfg.engine.record_trace = true;
  cfg.stop.max_rounds = 200;
  adversary::TargetedRandomAdversary adv(0.7, 1.0, 2024);
  auto engine = core::make_engine(cfg, &adv);
  const sim::RunResult live = engine->run(cfg.stop);
  ASSERT_TRUE(live.explored);

  const auto schedule = sim::edge_schedule_of(engine->trace());
  const auto ring = EvolvingRing::from_script(8, schedule, live.rounds + 64);
  const Round offline2 = offline_two_agent_exploration_time(
      ring, cfg.start_nodes.empty() ? 0 : cfg.start_nodes[0],
      cfg.start_nodes.empty() ? 4 : cfg.start_nodes[1], live.rounds + 64);
  ASSERT_GT(offline2, 0);
  EXPECT_LE(offline2, live.explored_round);
}

TEST(OfflineOptimum, TwoAgentsNeverSlowerThanOne) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const NodeId n = 7;
    util::Rng rng(seed);
    std::vector<std::optional<EdgeId>> missing;
    for (int i = 0; i < 60; ++i) {
      missing.push_back(rng.chance(0.5)
                            ? std::optional<EdgeId>(static_cast<EdgeId>(
                                  rng.below(static_cast<std::uint64_t>(n))))
                            : std::nullopt);
    }
    EvolvingRing ring(n, std::move(missing));
    const Round one = offline_exploration_time(ring, 0, 60);
    const Round two = offline_two_agent_exploration_time(ring, 0, 3, 60);
    if (one > 0 && two > 0) {
      EXPECT_LE(two, one) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dring::ring
