// Tests for the in-memory campaign query service (core/query.hpp):
// cache-derived reports must be byte-identical to the batch analysis
// path, point lookup must be an exact hit/miss oracle, store bytes must
// re-emit verbatim, the missing-cell scan must partition like the
// orchestrator's shard filter, and the streaming aggregator's exact
// columns must be bit-identical to the batch fold for any arrival order,
// any merge split and any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "core/analysis.hpp"
#include "core/campaign.hpp"
#include "core/query.hpp"
#include "util/json.hpp"

namespace dring::core {
namespace {

CampaignSpec query_campaign() {
  CampaignSpec campaign;
  campaign.name = "query-test";
  campaign.algorithms = {"KnownNNoChirality", "UnconsciousExploration"};
  campaign.sizes = {5, 6};
  AdversarySpec targeted;
  targeted.family = "targeted-random";
  targeted.target_prob = 0.5;
  AdversarySpec null_adv;
  campaign.adversaries = {null_adv, targeted};
  campaign.t_intervals = {1, 3};
  campaign.seeds_per_cell = 2;
  campaign.salt = 21;
  campaign.max_rounds = 3000;
  return campaign;
}

/// One executed row set per test binary: the simulation cost is paid
/// once, every test below queries the same rows.
const std::vector<CampaignRow>& executed_rows() {
  static const std::vector<CampaignRow> rows =
      run_scenarios(expand(query_campaign()), 2);
  return rows;
}

ResultCache make_cache() {
  return ResultCache(ResultStore{current_provenance(), executed_rows()});
}

// --- cache-derived reports are byte-identical to the batch path ------------

TEST(QueryCache, AggregateReportsMatchBatchBytes) {
  const ResultCache cache = make_cache();
  const std::vector<std::vector<std::string>> groupings = {
      {},                      // global fold
      {"algorithm"},           // single-axis fast path (bucket walk)
      {"n"},                   // numeric single axis
      {"algorithm", "n"},      // composite keys
      {"t_interval", "algorithm", "n"},
  };
  for (const auto& keys : groupings) {
    for (const Metric metric :
         {Metric::ExploredRound, Metric::Rounds, Metric::Moves}) {
      for (const ReportFormat format :
           {ReportFormat::Markdown, ReportFormat::Csv, ReportFormat::Json}) {
        const std::string batch = render_aggregate_report(
            aggregate_rows(executed_rows(), keys, metric), keys, metric,
            format);
        const std::string cached = render_aggregate_report(
            cache.aggregate(keys, metric), keys, metric, format);
        EXPECT_EQ(cached, batch)
            << "group-by size " << keys.size() << ", metric "
            << to_string(metric);
      }
    }
  }
}

TEST(QueryCache, FrontierReportsMatchBatchBytes) {
  const ResultCache cache = make_cache();
  for (const std::string axis : {"n", "t_interval"}) {
    const std::vector<std::string> keys = {"algorithm"};
    const std::string batch = render_frontier_report(
        detect_frontier(executed_rows(), keys, axis, 0.5), keys, axis, 0.5,
        ReportFormat::Markdown);
    const std::string cached =
        render_frontier_report(cache.frontier(keys, axis, 0.5), keys, axis,
                               0.5, ReportFormat::Markdown);
    EXPECT_EQ(cached, batch) << "axis " << axis;
  }
}

TEST(QueryCache, AggregateCanonicalizesAliasesAndRejectsUnknownAxes) {
  const ResultCache cache = make_cache();
  // "T" and "k" are documented aliases; the cache must accept exactly
  // what the batch path accepts.
  EXPECT_EQ(cache.aggregate({"T"}, Metric::Rounds).size(),
            cache.aggregate({"t_interval"}, Metric::Rounds).size());
  EXPECT_THROW(cache.aggregate({"no_such_axis"}, Metric::Rounds),
               std::invalid_argument);
}

// --- point lookup ----------------------------------------------------------

TEST(QueryCache, FindIsAnExactHitMissOracle) {
  const ResultCache cache = make_cache();
  for (const CampaignRow& row : cache.rows()) {
    const CampaignRow* hit = cache.find(row.fingerprint);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(row_line(*hit), row_line(row));
  }
  // Fingerprints not in the store must miss, including 0 (the empty-slot
  // sentinel is row-index-based, not fingerprint-based).
  EXPECT_EQ(cache.find(0), nullptr);
  EXPECT_EQ(cache.find(~std::uint64_t{0}), nullptr);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t fp = rng();
    const CampaignRow* row = cache.find(fp);
    const bool in_store =
        std::any_of(cache.rows().begin(), cache.rows().end(),
                    [&](const CampaignRow& r) { return r.fingerprint == fp; });
    EXPECT_EQ(row != nullptr, in_store);
  }
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, static_cast<long long>(cache.size()));
  EXPECT_GE(stats.misses, 2);
}

TEST(QueryCache, EmptyCacheAnswersWithoutIndexing) {
  const ResultCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(123), nullptr);
  EXPECT_TRUE(cache.aggregate({"algorithm"}, Metric::Rounds).empty());
}

// --- store byte identity ---------------------------------------------------

TEST(QueryCache, StoreBytesReEmitTheSourceFileVerbatim) {
  const std::string path = testing::TempDir() + "query_store_bytes.jsonl";
  std::remove(path.c_str());
  write_result_store(path, executed_rows());

  std::ifstream in(path);
  std::stringstream disk;
  disk << in.rdbuf();

  const ResultCache cache = ResultCache::load({path});
  EXPECT_EQ(cache.store_bytes(), disk.str());
  std::remove(path.c_str());
}

// --- missing-cell scan ------------------------------------------------------

TEST(QueryCache, ScanCellsPartitionsLikeTheShardFilter) {
  const std::vector<ScenarioSpec> specs = expand(query_campaign());
  // A cache holding only half the rows: every other canonical row.
  std::vector<CampaignRow> half;
  for (std::size_t i = 0; i < executed_rows().size(); i += 2)
    half.push_back(executed_rows()[i]);
  const ResultCache cache(ResultStore{current_provenance(), half});

  const int shards = 3;
  const ResultCache::CellScan scan = cache.scan_cells(specs, shards);
  EXPECT_EQ(scan.present.size() + scan.missing.size(), specs.size());
  EXPECT_EQ(scan.present.size(), half.size());

  // The missing shard list is exactly {fp % shards} over the missing
  // fingerprints — the partition dring_campaign --shard executes.
  std::vector<int> expected;
  for (const std::uint64_t fp : scan.missing)
    expected.push_back(static_cast<int>(fp % shards));
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(scan.missing_shards, expected);
  EXPECT_THROW(cache.scan_cells(specs, 0), std::invalid_argument);

  const util::Json manifest =
      missing_cell_manifest("query-test", "spec.json", shards, scan);
  EXPECT_EQ(manifest.get_string("campaign", ""), "query-test");
  EXPECT_EQ(manifest.get_int("shards", 0), shards);
  EXPECT_EQ(manifest.at("missing_cells").as_array().size(),
            scan.missing.size());
  EXPECT_EQ(manifest.at("missing").as_array().size(),
            scan.missing_shards.size());
  EXPECT_NE(manifest.get_string("resume_hint", "").find("dring_orchestrate"),
            std::string::npos);
}

// --- streaming aggregation --------------------------------------------------

/// The streaming-exact fields of a GroupRow (everything except the
/// sketch-estimated median/p95 and moment-derived stddev), as a
/// comparable tuple string.
std::string exact_fields(const GroupRow& row) {
  std::ostringstream out;
  out.precision(17);  // full double round-trip: "bit-identical" means it
  for (const std::string& k : row.key) out << k << "|";
  out << row.agg.runs << " " << row.agg.successes << " "
      << row.agg.premature << " " << row.agg.violations << " "
      << row.agg.rate_ci.lo << " " << row.agg.rate_ci.hi << " "
      << row.agg.samples << " " << row.agg.min << " " << row.agg.max << " "
      << row.agg.mean;
  return out.str();
}

std::vector<std::string> exact_fields(const std::vector<GroupRow>& rows) {
  std::vector<std::string> out;
  for (const GroupRow& row : rows) out.push_back(exact_fields(row));
  return out;
}

TEST(StreamingAggregator, ExactColumnsMatchBatchForAnyArrivalOrder) {
  const std::vector<std::string> keys = {"algorithm", "n"};
  const std::vector<GroupRow> batch =
      aggregate_rows(executed_rows(), keys, Metric::ExploredRound);

  for (const unsigned seed : {1u, 2u, 3u}) {
    std::vector<CampaignRow> shuffled = executed_rows();
    std::mt19937 rng(seed);
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    StreamingAggregator agg(keys, Metric::ExploredRound);
    for (const CampaignRow& row : shuffled) agg.add(row);
    EXPECT_EQ(agg.rows_folded(),
              static_cast<long long>(executed_rows().size()));
    EXPECT_EQ(exact_fields(agg.finish()), exact_fields(batch))
        << "seed " << seed;
  }
}

TEST(StreamingAggregator, MergeOfAnySplitEqualsTheSingleFold) {
  const std::vector<std::string> keys = {"algorithm"};
  StreamingAggregator whole(keys, Metric::Rounds);
  for (const CampaignRow& row : executed_rows()) whole.add(row);

  StreamingAggregator parts(keys, Metric::Rounds);
  for (std::size_t start : {0u, 1u, 2u}) {
    StreamingAggregator shard(keys, Metric::Rounds);
    for (std::size_t i = start; i < executed_rows().size(); i += 3)
      shard.add(executed_rows()[i]);
    parts.merge(shard);
  }
  EXPECT_EQ(parts.rows_folded(), whole.rows_folded());
  // Merge is exact for the whole state including the sketch: the rendered
  // reports (which include median/p95) must be identical.
  EXPECT_EQ(parts.render(ReportFormat::Csv), whole.render(ReportFormat::Csv));

  StreamingAggregator other_keys({"n"}, Metric::Rounds);
  EXPECT_THROW(parts.merge(other_keys), std::invalid_argument);
  StreamingAggregator other_metric(keys, Metric::Moves);
  EXPECT_THROW(parts.merge(other_metric), std::invalid_argument);
}

TEST(StreamingAggregator, RenderMarksTheEstimatedColumns) {
  StreamingAggregator agg({"algorithm"}, Metric::ExploredRound);
  for (const CampaignRow& row : executed_rows()) agg.add(row);
  const std::string md = agg.render(ReportFormat::Markdown);
  EXPECT_NE(md.find("sketch"), std::string::npos);
  // Csv/Json stay machine-readable: no preamble.
  EXPECT_EQ(agg.render(ReportFormat::Csv).find("sketch"), std::string::npos);
}

TEST(StreamingCampaign, StreamedRunMatchesBatchForAnyThreadCount) {
  const CampaignSpec campaign = query_campaign();
  std::string serial;
  for (const int threads : {1, 2, 4}) {
    CampaignOptions options;
    options.threads = threads;
    StreamingAggregator stream({"algorithm", "n"}, Metric::ExploredRound);
    options.stream = &stream;
    const CampaignReport report = run_campaign(campaign, options);
    // No out_path: the rows are folded and discarded, never materialized.
    EXPECT_TRUE(report.rows.empty());
    EXPECT_EQ(report.executed, expand(campaign).size());
    const std::string rendered = stream.render(ReportFormat::Csv);
    if (threads == 1)
      serial = rendered;
    else
      EXPECT_EQ(rendered, serial) << threads << " threads";
  }
  // And the exact columns agree with the batch fold over a plain run.
  StreamingAggregator stream({"algorithm", "n"}, Metric::ExploredRound);
  CampaignOptions options;
  options.threads = 2;
  options.stream = &stream;
  run_campaign(campaign, options);
  EXPECT_EQ(
      exact_fields(stream.finish()),
      exact_fields(aggregate_rows(executed_rows(), {"algorithm", "n"},
                                  Metric::ExploredRound)));
}

TEST(StreamingCampaign, StreamingWithStoreKeepsTheStoreBytes) {
  const std::string plain_path = testing::TempDir() + "query_plain.jsonl";
  const std::string stream_path = testing::TempDir() + "query_stream.jsonl";
  std::remove(plain_path.c_str());
  std::remove(stream_path.c_str());

  const CampaignSpec campaign = query_campaign();
  CampaignOptions plain;
  plain.threads = 2;
  plain.out_path = plain_path;
  run_campaign(campaign, plain);

  CampaignOptions streamed;
  streamed.threads = 2;
  streamed.out_path = stream_path;
  StreamingAggregator stream({"algorithm"}, Metric::ExploredRound);
  streamed.stream = &stream;
  const CampaignReport report = run_campaign(campaign, streamed);
  EXPECT_GT(stream.rows_folded(), 0);
  EXPECT_FALSE(report.rows.empty());  // out_path keeps the rows

  std::ifstream a(plain_path), b(stream_path);
  std::stringstream plain_bytes, stream_bytes;
  plain_bytes << a.rdbuf();
  stream_bytes << b.rdbuf();
  EXPECT_EQ(stream_bytes.str(), plain_bytes.str());
  std::remove(plain_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(StreamingScenarios, DiscardedRunKeepsNothingButCallsEveryRow) {
  const std::vector<ScenarioSpec> specs = expand(query_campaign());
  long long seen = 0;
  const std::vector<CampaignRow> rows = run_scenarios_streaming(
      specs, 2, [&](const CampaignRow&) { ++seen; }, /*keep_rows=*/false);
  EXPECT_EQ(seen, static_cast<long long>(specs.size()));
  EXPECT_TRUE(rows.empty());
}

// --- sketch quantiles -------------------------------------------------------

TEST(SketchQuantile, IsMonotoneAndStaysInsideTheBucketRange) {
  const std::vector<long long>& bounds = streaming_quantile_bounds();
  std::vector<long long> counts(bounds.size() + 1, 0);
  // Samples 1..100 land in the doubling buckets.
  long long total = 0;
  for (long long v = 1; v <= 100; ++v) {
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    counts[static_cast<std::size_t>(it - bounds.begin())]++;
    ++total;
  }
  double prev = -1;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    const double est = sketch_quantile(bounds, counts, total, q);
    EXPECT_GE(est, prev);
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 128.0);  // the bucket ceiling above 100
    prev = est;
  }
  // Medians of a doubling sketch are bucket-interpolated: the estimate
  // for the true median 50.5 must land inside the [33, 64] bucket.
  const double median = sketch_quantile(bounds, counts, total, 0.5);
  EXPECT_GE(median, 33.0);
  EXPECT_LE(median, 64.0);
}

// --- query protocol ---------------------------------------------------------

TEST(QueryProtocol, AggregateRequestReturnsTheBatchReportBytes) {
  const ResultCache cache = make_cache();
  util::Json request{util::Json::Object{}};
  request.set("op", util::Json("aggregate"));
  request.set("group_by", util::Json("algorithm,n"));
  request.set("metric", util::Json("explored_round"));
  const util::Json response = handle_query(cache, request);
  ASSERT_TRUE(response.get_bool("ok", false));
  const std::vector<std::string> keys = {"algorithm", "n"};
  EXPECT_EQ(response.get_string("report", ""),
            render_aggregate_report(
                aggregate_rows(executed_rows(), keys, Metric::ExploredRound),
                keys, Metric::ExploredRound, ReportFormat::Markdown));
  // The response reports this query's hit/miss delta.
  ASSERT_TRUE(response.has("cache"));
}

TEST(QueryProtocol, PointRequestByHexFingerprint) {
  const ResultCache cache = make_cache();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(
                    executed_rows().front().fingerprint));
  const util::Json response = handle_query_line(
      cache, std::string("{\"op\":\"point\",\"fp\":\"") + buffer + "\"}");
  ASSERT_TRUE(response.get_bool("ok", false));
  EXPECT_TRUE(response.get_bool("found", false));
  const util::Json miss = handle_query_line(
      cache, "{\"op\":\"point\",\"fp\":\"0xdeadbeefdeadbeef\"}");
  ASSERT_TRUE(miss.get_bool("ok", false));
  EXPECT_FALSE(miss.get_bool("found", true));
}

TEST(QueryProtocol, ErrorsComeBackAsResponsesNeverExceptions) {
  const ResultCache cache = make_cache();
  EXPECT_FALSE(
      handle_query_line(cache, "{\"op\":\"no_such_op\"}").get_bool("ok", true));
  EXPECT_FALSE(handle_query_line(cache, "not json").get_bool("ok", true));
  EXPECT_FALSE(handle_query_line(cache, "{\"op\":\"frontier\"}")
                   .get_bool("ok", true));  // missing axis
}

}  // namespace
}  // namespace dring::core
