// Reproduces Table 4 of the paper (SSYNC possibility results):
//
//   | PT | 2 | chirality + bound N    | partial termination, O(N^2) moves |
//   | PT | 2 | chirality + landmark   | partial termination, O(n^2) moves |
//   | PT | 3 | bound N                | partial termination, O(N^2) moves |
//   | PT | 3 | landmark               | partial termination, O(n^2) moves |
//   | ET | 2 | chirality              | unconscious exploration           |
//   | ET | 3 | known n                | partial termination               |
//
// For every row: sweep ring sizes under (a) hostile randomized dynamics
// (targeted removals + adversarial sleep) and (b) the sliding-window
// move-forcing adversary where applicable, and report the worst measured
// move count next to the paper's asymptotic claim.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/proof_adversaries.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dring;

struct RowStats {
  long long worst_moves = 0;
  NodeId worst_n = 1;
  int runs = 0;
  int failures = 0;
  int full_terminations = 0;
  int partial_terminations = 0;
};

void account(RowStats& row, const sim::RunResult& r, NodeId n,
             bool termination_required) {
  row.runs += 1;
  const bool ok = r.explored && !r.premature_termination &&
                  r.violations.empty() &&
                  (!termination_required || r.any_terminated());
  if (!ok) {
    row.failures += 1;
    return;
  }
  if (r.all_terminated) row.full_terminations += 1;
  if (r.any_terminated()) row.partial_terminations += 1;
  if (r.total_moves > row.worst_moves) {
    row.worst_moves = r.total_moves;
    row.worst_n = n;
  }
}

RowStats sweep(algo::AlgorithmId id, const std::vector<NodeId>& sizes,
               int seeds, bool terminating, bool with_sliding_window,
               const core::SweepOptions& pool) {
  // Build the scenario matrix, run it on the worker pool, fold in task
  // order (identical to the old serial loop).
  std::vector<core::ScenarioTask> tasks;
  std::vector<NodeId> task_n;
  for (const NodeId n : sizes) {
    for (int seed = 0; seed <= seeds; ++seed) {
      core::ScenarioTask task;
      task.cfg = core::default_config(id, n);
      task.cfg.stop.max_rounds = 200'000LL + 4000LL * n * n;
      task.seed = 7919ULL * static_cast<std::uint64_t>(n) +
                  static_cast<std::uint64_t>(seed);
      if (seed == 0) {
        task.make_adversary = [] {
          return std::make_unique<sim::NullAdversary>();
        };
      } else {
        const double activation = 0.5 + 0.1 * (seed % 5);
        const std::uint64_t s = task.seed;
        task.make_adversary = [activation,
                               s]() -> std::unique_ptr<sim::Adversary> {
          return std::make_unique<adversary::TargetedRandomAdversary>(
              0.6, activation, s);
        };
      }
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
    if (with_sliding_window) {
      core::ScenarioTask task;
      task.cfg = core::default_config(id, n);
      task.cfg.start_nodes = {static_cast<NodeId>(n / 2 - 1), 0};
      task.cfg.orientations = {agent::kChiralOrientation,
                               agent::kChiralOrientation};
      if (task.cfg.landmark) task.cfg.landmark = 1;  // inside the window
      task.cfg.engine.fairness_window = 65536;
      task.cfg.stop.max_rounds = 200'000LL + 4000LL * n * n;
      task.cfg.stop.stop_when_explored_and_one_terminated = true;
      task.make_adversary = []() -> std::unique_ptr<sim::Adversary> {
        return std::make_unique<adversary::SlidingWindowAdversary>(0, 1);
      };
      tasks.push_back(std::move(task));
      task_n.push_back(n);
    }
  }

  const std::vector<sim::RunResult> results = core::run_sweep(tasks, pool);
  RowStats row;
  for (std::size_t i = 0; i < results.size(); ++i)
    account(row, results[i], task_n[i], terminating);
  return row;
}

std::string quad_ratio(const RowStats& row) {
  const double nn = static_cast<double>(row.worst_n) * row.worst_n;
  return util::fmt_count(row.worst_moves) + "  (= " +
         util::fmt_double(row.worst_moves / nn, 2) + " * n^2)";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 6));
  core::SweepOptions pool;
  pool.threads = static_cast<int>(cli.get_int("threads", 0));
  std::vector<NodeId> sizes = {5, 6, 8, 11, 16, 24};
  if (cli.has("max-n")) {
    const NodeId cap = static_cast<NodeId>(cli.get_int("max-n", 24));
    sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                               [&](NodeId n) { return n > cap; }),
                sizes.end());
  }

  std::cout << "=== Table 4: possibility results for SSYNC models ===\n"
            << "sizes: ";
  for (NodeId n : sizes) std::cout << n << " ";
  std::cout << "| adversaries: static, targeted-random x" << seeds
            << ", sliding-window (2-agent rows)\n\n";

  util::Table table({"Model", "N. Agents", "Assumptions", "Paper claim",
                     "Worst moves measured", "at n", "Term.", "Runs",
                     "Failures"});

  struct RowSpec {
    algo::AlgorithmId id;
    const char* model;
    const char* agents;
    const char* assume;
    const char* claim;
    bool terminating;
    bool sliding;
  };
  const RowSpec rows[] = {
      {algo::AlgorithmId::PTBoundWithChirality, "PT", "2",
       "Chirality, Known bound N", "O(N^2) moves (Th. 12)", true, true},
      {algo::AlgorithmId::PTLandmarkWithChirality, "PT", "2",
       "Chirality, Landmark", "O(n^2) moves (Th. 14)", true, true},
      {algo::AlgorithmId::PTBoundNoChirality, "PT", "3", "Known bound N",
       "O(N^2) moves (Th. 16)", true, false},
      {algo::AlgorithmId::PTLandmarkNoChirality, "PT", "3", "Landmark",
       "O(n^2) moves (Th. 17)", true, false},
      {algo::AlgorithmId::ETUnconscious, "ET", "2", "Chirality",
       "unconscious exploration (Th. 18)", false, false},
      {algo::AlgorithmId::ETBoundNoChirality, "ET", "3", "Known n",
       "partial termination (Th. 20)", true, false},
  };

  for (const RowSpec& spec : rows) {
    const RowStats row =
        sweep(spec.id, sizes, seeds, spec.terminating, spec.sliding, pool);
    std::string term;
    if (!spec.terminating) {
      term = "none (ok)";
    } else {
      term = std::to_string(row.partial_terminations) + " partial / " +
             std::to_string(row.full_terminations) + " full";
    }
    table.add_row({spec.model, spec.agents, spec.assume, spec.claim,
                   quad_ratio(row), std::to_string(row.worst_n), term,
                   std::to_string(row.runs), std::to_string(row.failures)});
  }

  table.print(std::cout);
  std::cout
      << "\nFailures = runs that did not explore / terminated prematurely "
         "(expected: 0).  The sliding-window adversary realises the "
         "quadratic lower bound, so the 2-agent PT rows measure Theta(n^2) "
         "moves; the paper's O(N^2)/O(n^2) claims hold with small "
         "constants.\n";
  return 0;
}
