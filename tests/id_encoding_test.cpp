// Tests for the Section 3.2.3 ID machinery: S(ID), phases, Dup expansion
// (checked against Figure 11), and the Lemma 3 common-run property.
#include <gtest/gtest.h>

#include <set>

#include "algo/id_encoding.hpp"
#include "util/rng.hpp"

namespace dring::algo {
namespace {

TEST(IdSchedule, PhaseOfRound) {
  EXPECT_EQ(phase_of_round(1), 0);
  EXPECT_EQ(phase_of_round(2), 1);
  EXPECT_EQ(phase_of_round(3), 1);
  EXPECT_EQ(phase_of_round(4), 2);
  EXPECT_EQ(phase_of_round(7), 2);
  EXPECT_EQ(phase_of_round(8), 3);
  EXPECT_EQ(phase_of_round(1023), 9);
  EXPECT_EQ(phase_of_round(1024), 10);
}

TEST(IdSchedule, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
}

// Figure 11: ID = 1 gives S(ID) = "1010", jbar = 2; phase 3 expands to
// "11001100" (rounds 8..15), i.e. right,right,left,left,right,right,...
TEST(IdSchedule, Figure11Id1) {
  IdSchedule s(1);
  EXPECT_EQ(s.padded_s(), "1010");
  EXPECT_EQ(s.jbar(), 2);
  EXPECT_EQ(s.phase_string(3), "11001100");
  EXPECT_EQ(s.phase_string(4), "1111000011110000");

  // Rounds in phases j <= jbar are all left.
  for (std::int64_t r = 1; r <= 7; ++r)
    EXPECT_EQ(s.direction(r), Dir::Left) << "round " << r;

  // Phase 3, rounds 8..15: 1 1 0 0 1 1 0 0.
  const Dir expect[] = {Dir::Right, Dir::Right, Dir::Left, Dir::Left,
                        Dir::Right, Dir::Right, Dir::Left, Dir::Left};
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(s.direction(8 + i), expect[i]) << "round " << 8 + i;
}

TEST(IdSchedule, SStringStructure) {
  // S(ID) = "10" + b(ID) + "0", padded to a power-of-two length.
  IdSchedule s48(48);  // b = 110000 -> S = "101100000" (9) -> pad to 16
  EXPECT_EQ(s48.jbar(), 4);
  EXPECT_EQ(s48.padded_s(), "0000000101100000");

  IdSchedule s0(0);  // b = "0" -> S = "1000" (4), no padding needed
  EXPECT_EQ(s0.jbar(), 2);
  EXPECT_EQ(s0.padded_s(), "1000");
}

TEST(IdSchedule, DirectionMatchesExplicitPhaseString) {
  // direction() must agree with the materialised Dup string in every phase.
  for (std::uint64_t id : {0ULL, 1ULL, 5ULL, 42ULL, 48ULL, 164ULL, 304ULL}) {
    IdSchedule s(id);
    for (int j = s.jbar() + 1; j <= s.jbar() + 3; ++j) {
      const std::string bits = s.phase_string(j);
      const std::int64_t base = std::int64_t{1} << j;
      ASSERT_EQ(bits.size(), static_cast<std::size_t>(base));
      for (std::int64_t off = 0; off < base; ++off) {
        const Dir expect =
            bits[static_cast<std::size_t>(off)] == '0' ? Dir::Left : Dir::Right;
        ASSERT_EQ(s.direction(base + off), expect)
            << "id=" << id << " round=" << base + off;
      }
    }
  }
}

TEST(IdSchedule, SwitchesDetectsChanges) {
  IdSchedule s(1);
  // Rounds 1..7 all left; round 8 flips to right.
  EXPECT_FALSE(s.switches(5));
  EXPECT_TRUE(s.switches(8));
  EXPECT_FALSE(s.switches(9));   // right, right
  EXPECT_TRUE(s.switches(10));   // right -> left
}

TEST(IdSchedule, EveryIdMovesBothDirectionsEventually) {
  // Lemma 3 (last claim): every S(ID) contains both 0 and 1, so each agent
  // eventually moves in both directions within a phase.
  for (std::uint64_t id = 0; id < 64; ++id) {
    IdSchedule s(id);
    bool left = false, right = false;
    const std::int64_t base = std::int64_t{1} << (s.jbar() + 1);
    for (std::int64_t r = base; r < 2 * base; ++r) {
      left |= s.direction(r) == Dir::Left;
      right |= s.direction(r) == Dir::Right;
    }
    EXPECT_TRUE(left) << id;
    EXPECT_TRUE(right) << id;
  }
}

/// Longest same-direction run shared by two schedules up to round `limit`.
std::int64_t longest_common_run(const IdSchedule& a, const IdSchedule& b,
                                std::int64_t limit) {
  std::int64_t best = 0, cur = 0;
  for (std::int64_t r = 1; r <= limit; ++r) {
    if (a.direction(r) == b.direction(r)) {
      ++cur;
      best = std::max(best, cur);
    } else {
      cur = 0;
    }
  }
  return best;
}

// Lemma 3: for distinct IDs and any c > 0, by round
// 32*((len(ID)+3)*c*n)+1 there is a common-direction run of length c*n.
TEST(IdSchedule, Lemma3CommonRunProperty) {
  util::Rng rng(2024);
  const std::int64_t n = 7;
  const std::int64_t c = 2;
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t id_a = rng.below(500);
    std::uint64_t id_b = rng.below(500);
    if (id_a == id_b) id_b += 1;
    IdSchedule a(id_a), b(id_b);
    const std::int64_t len =
        static_cast<std::int64_t>(std::max(a.padded_s().size(),
                                           b.padded_s().size()));
    const std::int64_t bound = 32 * ((len + 3) * c * n) + 1;
    EXPECT_GE(longest_common_run(a, b, bound), c * n)
        << "ids " << id_a << ", " << id_b;
  }
}

TEST(IdSchedule, IdenticalIdsNeverDiverge) {
  IdSchedule a(42), b(42);
  for (std::int64_t r = 1; r < 4096; ++r)
    ASSERT_EQ(a.direction(r), b.direction(r));
}

TEST(NoChiralityBound, MatchesFormula) {
  // 32 * (3*ceil(log2 n) + 3) * 5 * n
  EXPECT_EQ(no_chirality_time_bound(8), 32 * (3 * 3 + 3) * 5 * 8);
  EXPECT_EQ(no_chirality_time_bound(9), 32 * (3 * 4 + 3) * 5 * 9);
}

TEST(ComputeAgentId, MatchesFigureValues) {
  EXPECT_EQ(compute_agent_id(2, 2, 0), 48u);
  EXPECT_EQ(compute_agent_id(3, 4, 0), 164u);
  EXPECT_EQ(compute_agent_id(2, 1, 2), 42u);
  EXPECT_EQ(compute_agent_id(6, 2, 0), 304u);
}

}  // namespace
}  // namespace dring::algo
